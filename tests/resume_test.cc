/// \file tests/resume_test.cc
/// \brief Resume-equivalence property tests: continuing a walk from its
/// current level (or from a saved/restored state, or from a batch
/// engine's persistent per-target state) must be BIT-identical to a
/// from-scratch walk of the same depth, under both first-hit (DHT) and
/// visiting (PPR) semantics — the determinism contract of DESIGN.md §3
/// that makes resumable deepening byte-safe.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/forward.h"
#include "dht/forward_batch.h"
#include "dht/walker_state.h"
#include "join2/b_idj.h"
#include "join2/f_idj.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::StarGraph;
using testing::TwoCommunityGraph;

std::vector<DhtParams> Semantics() {
  return {DhtParams::Lambda(0.2), DhtParams::Lambda(0.7),
          DhtParams::Exponential(), DhtParams::PersonalizedPageRank(0.7)};
}

// --------------------------------------------------- scalar walkers

TEST(ResumeTest, BackwardSplitAdvanceIsBitIdentical) {
  Graph g = RandomGraph(45, 140, 41, true, true);
  for (const DhtParams& p : Semantics()) {
    for (auto mode : {PropagationMode::kDense, PropagationMode::kSparse,
                      PropagationMode::kAdaptive}) {
      BackwardWalker whole(g, mode);
      BackwardWalker split(g, mode);
      for (int l : {1, 2, 4}) {
        whole.Reset(p, 7);
        whole.Advance(2 * l);
        split.Reset(p, 7);
        split.Advance(l);
        split.Advance(l);
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          // Bit-identical, not merely close: resume must not perturb
          // the floating-point trajectory.
          EXPECT_EQ(whole.Score(u), split.Score(u))
              << "first_hit=" << p.first_hit << " l=" << l << " u=" << u;
        }
      }
    }
  }
}

TEST(ResumeTest, ForwardSplitAdvanceIsBitIdentical) {
  Graph g = RandomGraph(45, 140, 42, false, true);
  for (const DhtParams& p : Semantics()) {
    ForwardWalker whole(g);
    ForwardWalker split(g);
    for (int l : {1, 3, 4}) {
      whole.Reset(p, 2, 31);
      whole.Advance(2 * l);
      split.Reset(p, 2, 31);
      split.Advance(l);
      split.Advance(l);
      EXPECT_EQ(whole.Score(), split.Score())
          << "first_hit=" << p.first_hit << " l=" << l;
      for (int i = 1; i <= 2 * l; ++i) {
        EXPECT_EQ(whole.HitProbability(i), split.HitProbability(i));
      }
    }
  }
}

TEST(ResumeTest, BackwardSaveRestoreResumesExactly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.3);
  BackwardWalker reference(g);
  reference.Reset(p, 7);
  reference.Advance(8);

  BackwardWalker walker(g);
  walker.Reset(p, 7);
  walker.Advance(3);
  BackwardWalkerState snapshot;
  walker.Save(&snapshot);
  EXPECT_EQ(snapshot.level, 3);
  EXPECT_EQ(snapshot.target, 7);
  // Perturb the walker with unrelated targets, then restore.
  walker.Reset(p, 2);
  walker.Advance(5);
  walker.Restore(p, snapshot);
  EXPECT_EQ(walker.level(), 3);
  EXPECT_EQ(walker.target(), 7);
  walker.Advance(5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(walker.Score(u), reference.Score(u)) << "u=" << u;
  }
}

TEST(ResumeTest, ForwardSaveRestoreResumesExactly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::PersonalizedPageRank(0.8);  // PPR path too
  ForwardWalker reference(g);
  reference.Reset(p, 0, 9);
  reference.Advance(9);

  ForwardWalker walker(g);
  walker.Reset(p, 0, 9);
  walker.Advance(4);
  ForwardWalkerState snapshot;
  walker.Save(&snapshot);
  walker.Reset(p, 3, 6);
  walker.Advance(2);
  walker.Restore(p, snapshot);
  walker.Advance(5);
  EXPECT_EQ(walker.Score(), reference.Score());
  EXPECT_EQ(walker.level(), 9);
  for (int i = 1; i <= 9; ++i) {
    EXPECT_EQ(walker.HitProbability(i), reference.HitProbability(i));
  }
}

// ------------------------------------------------ walker state pool

TEST(ResumeTest, WalkerStatePoolFindsPutAndEvictsLru) {
  Graph g = StarGraph(16);
  DhtParams p = DhtParams::Lambda(0.2);
  BackwardWalker walker(g);

  BackwardWalkerState proto;
  walker.Reset(p, 1);
  walker.Advance(2);
  walker.Save(&proto);
  const std::size_t per_state = proto.ApproxBytes();

  // Budget for about two states.
  WalkerStatePool<BackwardWalkerState> pool(2 * per_state + per_state / 2);
  pool.Put(10, proto);
  pool.Put(11, proto);
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_NE(pool.Find(10), nullptr);  // bump 10 to most-recent
  pool.Put(12, proto);                // evicts 11, the LRU entry
  EXPECT_EQ(pool.Find(11), nullptr);
  EXPECT_NE(pool.Find(10), nullptr);
  EXPECT_NE(pool.Find(12), nullptr);
  pool.Erase(10);
  EXPECT_EQ(pool.Find(10), nullptr);
  EXPECT_EQ(pool.size(), 1u);

  // A state larger than the whole budget is not retained.
  WalkerStatePool<BackwardWalkerState> tiny(1);
  tiny.Put(1, proto);
  EXPECT_EQ(tiny.Find(1), nullptr);
}

TEST(ResumeTest, WalkerStatePoolRetuneGrowsOnThrashShrinksOnIdle) {
  Graph g = StarGraph(16);
  DhtParams p = DhtParams::Lambda(0.2);
  BackwardWalker walker(g);
  BackwardWalkerState proto;
  walker.Reset(p, 1);
  walker.Advance(2);
  walker.Save(&proto);
  const std::size_t per_state = proto.ApproxBytes();

  // THRASH: four keys cycling through a one-state budget — misses and
  // evictions dominate, so the feedback autotuner doubles the budget.
  WalkerStatePool<BackwardWalkerState> pool(per_state + per_state / 2);
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(pool.Find(k % 4), nullptr);
    pool.Put(k % 4, proto);
  }
  EXPECT_GT(pool.evictions(), 0);
  const std::size_t before = pool.max_bytes();
  EXPECT_EQ(pool.Retune(per_state, 100 * per_state), 2 * before);
  EXPECT_EQ(pool.budget_grows(), 1);
  // No new activity since: the budget holds steady.
  EXPECT_EQ(pool.Retune(per_state, 100 * per_state), 2 * before);
  EXPECT_EQ(pool.budget_grows(), 1);

  // IDLE: all hits, no evictions, resident far below the budget — the
  // autotuner halves it (never below `lo` or the resident bytes).
  WalkerStatePool<BackwardWalkerState> idle(64 * per_state);
  idle.Put(1, proto);
  for (int i = 0; i < 8; ++i) EXPECT_NE(idle.Find(1), nullptr);
  EXPECT_EQ(idle.Retune(per_state, 100 * per_state), 32 * per_state);
  EXPECT_EQ(idle.budget_shrinks(), 1);
  // Repeated idle periods keep shrinking, but never below `lo`.
  for (int i = 0; i < 20; ++i) idle.Retune(4 * per_state, 100 * per_state);
  EXPECT_EQ(idle.max_bytes(), 4 * per_state);
}

TEST(ResumeTest, BatchWorkspacePoolCapDiscardsIdleWorkspaces) {
  Graph g = RandomGraph(60, 200, 91);
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<NodeId> targets = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<NodeId> sources = {11, 12, 13};

  // max_pooled_bytes = 1: every workspace is freed on release instead
  // of pinning 128 bytes/node for the engine's lifetime. Scores are
  // unaffected — the cap trades reallocation time for idle memory.
  BackwardWalkerBatch pooled(g);
  BackwardWalkerBatch capped(g, {.max_pooled_bytes = 1});
  EXPECT_EQ(pooled.Run(p, 4, targets, sources),
            capped.Run(p, 4, targets, sources));
  EXPECT_GT(pooled.pooled_workspaces(), 0u);
  EXPECT_LE(pooled.pooled_workspace_bytes(),
            BackwardWalkerBatch::kDefaultMaxPooledBytes);
  EXPECT_EQ(capped.pooled_workspaces(), 0u);
  EXPECT_EQ(capped.pooled_workspace_bytes(), 0u);
  EXPECT_GT(capped.workspaces_discarded(), 0);
  EXPECT_EQ(pooled.workspaces_discarded(), 0);

  ForwardWalkerBatch fpooled(g);
  ForwardWalkerBatch fcapped(g, {.max_pooled_bytes = 1});
  EXPECT_EQ(fpooled.Run(p, 4, sources, targets),
            fcapped.Run(p, 4, sources, targets));
  EXPECT_EQ(fcapped.pooled_workspaces(), 0u);
  EXPECT_GT(fcapped.workspaces_discarded(), 0);
}

// ------------------------------------------------- batched backward

TEST(ResumeTest, BackwardBatchResumeMatchesFromScratchBitwise) {
  Graph g = RandomGraph(50, 170, 43, true, true);
  std::vector<NodeId> targets = {3, 9, 14, 20, 27, 33, 38, 44, 48};
  std::vector<std::size_t> slots = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < 25; ++u) sources.push_back(u);
  for (const DhtParams& p : Semantics()) {
    BackwardWalkerBatch batch(g);
    std::vector<double> scratch = batch.Run(p, 8, targets, sources);

    BackwardBatchStates states(targets.size());
    std::vector<double> resumed(scratch.size());
    int64_t fresh_total = 0;
    for (int l : {1, 2, 4, 8}) {  // the IDJ deepening schedule
      fresh_total += batch.AdvanceChunked(
          p, l, targets, slots, sources,
          states, [&](std::size_t i, const double* row) {
            std::copy(row, row + sources.size(),
                      resumed.data() + i * sources.size());
          });
    }
    // Every target walked from scratch exactly once, at level 1.
    EXPECT_EQ(fresh_total, static_cast<int64_t>(targets.size()));
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      EXPECT_EQ(resumed[i], scratch[i]) << "first_hit=" << p.first_hit
                                        << " i=" << i;
    }
  }
}

TEST(ResumeTest, BackwardBatchResumeRelaxesFewerEdgesThanRestart) {
  Graph g = RandomGraph(60, 220, 44);
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<NodeId> targets;
  std::vector<std::size_t> slots;
  for (NodeId q = 0; q < 24; ++q) {
    targets.push_back(q);
    slots.push_back(static_cast<std::size_t>(q));
  }
  std::vector<NodeId> sources = {30, 40, 50, 55};

  BackwardWalkerBatch restart(g);
  BackwardWalkerBatch resume(g);
  BackwardBatchStates states(targets.size());
  auto sink = [](std::size_t, const double*) {};
  for (int l : {1, 2, 4, 8}) {
    restart.RunChunked(p, l, targets, sources, sink);
    resume.AdvanceChunked(p, l, targets, slots, sources, states, sink);
  }
  // Restart pays 1+2+4+8 = 15 levels of stepping; resume pays 8.
  EXPECT_LT(resume.edges_relaxed(), restart.edges_relaxed());
  EXPECT_GT(resume.edges_relaxed(), 0);
}

TEST(ResumeTest, BackwardBatchEvictionRestartsTransparently) {
  Graph g = RandomGraph(40, 130, 45);
  DhtParams p = DhtParams::Exponential();
  std::vector<NodeId> targets = {1, 5, 9, 13, 17, 21, 25, 29, 33, 37};
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < targets.size(); ++i) slots.push_back(i);
  std::vector<NodeId> sources = {0, 2, 4, 6};

  BackwardWalkerBatch batch(g);
  std::vector<double> scratch = batch.Run(p, 6, targets, sources);

  // A 1-byte budget: every writeback is dropped, every level restarts —
  // results must not change (only the step count does).
  BackwardBatchStates starving(targets.size(), 1);
  std::vector<double> resumed(scratch.size());
  for (int l : {1, 2, 4, 6}) {
    batch.AdvanceChunked(p, l, targets, slots, sources, starving,
                         [&](std::size_t i, const double* row) {
                           std::copy(row, row + sources.size(),
                                     resumed.data() + i * sources.size());
                         });
  }
  EXPECT_EQ(starving.bytes(), 0u);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    EXPECT_EQ(resumed[i], scratch[i]) << "i=" << i;
  }
}

TEST(ResumeTest, BackwardBatchDropFreesAndRestarts) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.4);
  std::vector<NodeId> targets = {7, 2};
  std::vector<std::size_t> slots = {0, 1};
  std::vector<NodeId> sources = {0, 1, 3};
  BackwardWalkerBatch batch(g);
  BackwardBatchStates states(2);
  auto sink = [](std::size_t, const double*) {};
  batch.AdvanceChunked(p, 2, targets, slots, sources, states, sink);
  EXPECT_EQ(states.level(0), 2);
  EXPECT_GT(states.bytes(), 0u);
  states.Drop(0);
  EXPECT_EQ(states.level(0), 0);
  // Dropped slot restarts; undropped one resumes. Both match scratch.
  std::vector<double> rows(2 * sources.size());
  int64_t fresh = batch.AdvanceChunked(
      p, 4, targets, slots, sources, states,
      [&](std::size_t i, const double* row) {
        std::copy(row, row + sources.size(), rows.data() + i * sources.size());
      });
  EXPECT_EQ(fresh, 1);
  std::vector<double> scratch = batch.Run(p, 4, targets, sources);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], scratch[i]);
  }
}

// -------------------------------------------------- batched forward

TEST(ResumeTest, ForwardBatchMatchesScalarWalker) {
  Graph g = RandomGraph(50, 160, 46, true, true);
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < 21; ++u) sources.push_back(u);  // partial block
  std::vector<NodeId> targets = {25, 30, 35, 40, 45};
  for (const DhtParams& p : Semantics()) {
    ForwardWalkerBatch batch(g);
    std::vector<double> got = batch.Run(p, 8, sources, targets);
    ASSERT_EQ(got.size(), sources.size() * targets.size());
    ForwardWalker walker(g);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (sources[s] == targets[t]) continue;
        double want = walker.Compute(p, 8, sources[s], targets[t]);
        // The sorted-support contract makes batch lanes bit-equal to
        // the scalar engine, not merely 1e-12-close.
        EXPECT_EQ(got[s * targets.size() + t], want)
            << "first_hit=" << p.first_hit << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ResumeTest, ForwardBatchChunkedMatchesSingleRun) {
  Graph g = RandomGraph(40, 120, 47);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<NodeId> sources = {0, 3, 6, 9, 12, 15, 18, 21, 24, 27};
  std::vector<NodeId> targets = {30, 33, 36};
  ForwardWalkerBatch batch(g);
  std::vector<double> whole = batch.Run(p, 7, sources, targets);
  std::vector<double> chunked(whole.size(), 0.0);
  std::vector<int> rows_seen(sources.size(), 0);
  batch.RunChunked(
      p, 7, sources, targets,
      [&](std::size_t s, const double* row) {
        rows_seen[s]++;
        std::copy(row, row + targets.size(), &chunked[s * targets.size()]);
      },
      /*max_sources_per_run=*/3);
  for (int seen : rows_seen) EXPECT_EQ(seen, 1);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(chunked[i], whole[i]) << "i=" << i;
  }
}

TEST(ResumeTest, ForwardBatchThreadCountDoesNotChangeResults) {
  Graph g = RandomGraph(45, 150, 48);
  DhtParams p = DhtParams::Lambda(0.5);
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < 30; ++u) sources.push_back(u);
  std::vector<NodeId> targets = {31, 35, 39, 43};
  ForwardWalkerBatch one(g, {.num_threads = 1});
  ForwardWalkerBatch four(g, {.num_threads = 4});
  std::vector<double> a = one.Run(p, 8, sources, targets);
  std::vector<double> b = four.Run(p, 8, sources, targets);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "i=" << i;
  }
  EXPECT_EQ(one.edges_relaxed(), four.edges_relaxed());
}

TEST(ResumeTest, ForwardBatchPairResumeMatchesFromScratchBitwise) {
  Graph g = RandomGraph(40, 130, 49, false, true);
  std::vector<NodeId> sources = {0, 2, 4, 6, 8, 10, 12, 14, 16};
  NodeId target = 33;
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < sources.size(); ++i) slots.push_back(i);
  std::vector<NodeId> target_vec = {target};
  for (const DhtParams& p : Semantics()) {
    ForwardWalkerBatch batch(g);
    std::vector<double> scratch = batch.Run(p, 8, sources, target_vec);

    ForwardBatchStates states;  // sparse map: no slot-count preallocation
    std::vector<double> resumed(sources.size());
    int64_t fresh_total = 0;
    for (int l : {1, 2, 4, 8}) {
      fresh_total += batch.AdvancePairs(
          p, l, sources, slots, target, states,
          [&](std::size_t i, double s) { resumed[i] = s; });
    }
    EXPECT_EQ(fresh_total, static_cast<int64_t>(sources.size()));
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(resumed[i], scratch[i])
          << "first_hit=" << p.first_hit << " i=" << i;
    }
  }
}

// ------------------------------------------- joins: resume ≡ restart

TEST(ResumeTest, BIdjResumeIsByteIdenticalWithFewerSteps) {
  Graph g = RandomGraph(60, 200, 51, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 25, 55);
  for (auto bound : {UpperBoundKind::kX, UpperBoundKind::kY}) {
    BIdjJoin resumed(BIdjJoin::Options{.bound = bound, .resume = true});
    BIdjJoin restarted(BIdjJoin::Options{.bound = bound, .resume = false});
    auto a = resumed.Run(g, p, 8, P, Q, 10);
    auto b = restarted.Run(g, p, 8, P, Q, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      // operator== compares scores exactly: byte-identical output.
      EXPECT_EQ((*a)[i], (*b)[i]) << "rank " << i;
    }
    EXPECT_LT(resumed.stats().walk_steps, restarted.stats().walk_steps);
    EXPECT_LE(resumed.stats().walks_started, restarted.stats().walks_started);
  }
}

TEST(ResumeTest, FIdjResumeIsByteIdenticalWithFewerSteps) {
  Graph g = RandomGraph(50, 170, 52, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 15);
  NodeSet Q = Range("Q", 20, 40);
  FIdjJoin resumed(FIdjJoin::Options{.resume = true});
  FIdjJoin restarted(FIdjJoin::Options{.resume = false});
  auto a = resumed.Run(g, p, 8, P, Q, 10);
  auto b = restarted.Run(g, p, 8, P, Q, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "rank " << i;
  }
  EXPECT_LT(resumed.stats().walk_steps, restarted.stats().walk_steps);
}

}  // namespace
}  // namespace dhtjoin
