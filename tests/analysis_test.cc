/// \file tests/analysis_test.cc
/// \brief Graph statistics, and executable verification of the
/// structural claims DESIGN.md makes about the dataset generators.

#include <gtest/gtest.h>

#include "datasets/dblp_like.h"
#include "datasets/yeast_like.h"
#include "graph/analysis.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::PathGraph;
using testing::RandomGraph;
using testing::StarGraph;

// ------------------------------------------------ connected components

TEST(ComponentsTest, SingleComponentGraphs) {
  for (const Graph& g :
       {PathGraph(5), CycleGraph(6), CompleteGraph(4), StarGraph(7)}) {
    auto info = ConnectedComponents(g);
    EXPECT_EQ(info.num_components, 1);
    EXPECT_EQ(info.largest, g.num_nodes());
  }
}

TEST(ComponentsTest, DirectednessIgnored) {
  // 0 -> 1, 2 -> 1: weakly connected despite no directed path 0 <-> 2.
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 1).ok());
  Graph g = std::move(b.Build()).value();
  auto info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 1);
}

TEST(ComponentsTest, IsolatedNodesAreOwnComponents) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b.Build()).value();
  auto info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 4);  // {0,1}, {2}, {3}, {4}
  EXPECT_EQ(info.largest, 2);
  EXPECT_EQ(info.component[0], info.component[1]);
  EXPECT_NE(info.component[2], info.component[3]);
}

// ---------------------------------------------- clustering coefficient

TEST(ClusteringTest, KnownValues) {
  // Complete graph: every wedge closed.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteGraph(5)), 1.0);
  // Star: no triangles.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(StarGraph(6)), 0.0);
  // Path: no triangles.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(PathGraph(5)), 0.0);
}

TEST(ClusteringTest, SingleTriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3: wedges = 2*(1+1+2... compute directly:
  // degrees 2,2,3,1 -> ordered wedges = 2+2+6+0 = 10; closed = 6.
  GraphBuilder b(4, true);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  Graph g = std::move(b.Build()).value();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.6);
}

TEST(ClusteringTest, GeneratorsAreClustered) {
  // DESIGN.md's load-bearing claim: the generators produce clustering
  // far above an equal-density random graph, which is what makes the
  // paper's prediction experiments recoverable.
  auto yeast = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
      .num_nodes = 800, .num_edges = 2400, .seed = 5});
  ASSERT_TRUE(yeast.ok());
  double yeast_cc = GlobalClusteringCoefficient(yeast->graph);
  Graph er = RandomGraph(800, 2400, 5, /*undirected=*/true);
  double er_cc = GlobalClusteringCoefficient(er);
  EXPECT_GT(yeast_cc, 5.0 * er_cc) << "yeast_cc=" << yeast_cc
                                   << " er_cc=" << er_cc;

  auto dblp = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 1500, .seed = 5});
  ASSERT_TRUE(dblp.ok());
  EXPECT_GT(GlobalClusteringCoefficient(dblp->graph), 0.05);
}

// ------------------------------------------------------- degree stats

TEST(DegreeStatsTest, RegularGraph) {
  DegreeStats s = ComputeDegreeStats(CycleGraph(10));
  // Directed cycle: out 1 + in 1 per node.
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 2);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

TEST(DegreeStatsTest, StarGraph) {
  DegreeStats s = ComputeDegreeStats(StarGraph(11));  // hub + 10 leaves
  EXPECT_EQ(s.max, 20);  // hub: 10 out + 10 in
  EXPECT_EQ(s.min, 2);   // leaf: 1 out + 1 in
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

TEST(DegreeStatsTest, EmptyGraph) {
  Graph g;
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(DegreeStatsTest, HeavyTailVisibleInPercentiles) {
  auto dblp = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 2000, .seed = 6});
  ASSERT_TRUE(dblp.ok());
  DegreeStats s = ComputeDegreeStats(dblp->graph);
  // Preferential attachment: p99 far above the median, and the top hub
  // well above p99.
  EXPECT_GT(s.p99, 3.0 * s.p50);
  EXPECT_GT(static_cast<double>(s.max), 1.5 * s.p99);
}

}  // namespace
}  // namespace dhtjoin
