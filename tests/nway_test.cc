/// \file tests/nway_test.cc
/// \brief The four n-way join algorithms (NL, AP, PJ, PJ-i) must agree
/// with each other and with brute-force enumeration, across query-graph
/// shapes, aggregates, and DHT variants.

#include <gtest/gtest.h>

#include <memory>

#include "core/ap_join.h"
#include "core/nl_join.h"
#include "core/partial_join.h"
#include "core/query_graph.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::RefNwayJoin;

enum class Shape { kChain2, kChain3, kTriangle, kTriangleBidir, kStar4 };

struct NwayCase {
  uint64_t seed;
  Shape shape;
  bool use_min;
  double lambda;  // 0 = DHTe
  std::size_t k;
  std::size_t m;
};

QueryGraph MakeQuery(Shape shape, const Graph& g) {
  // Node sets carved out of node-id ranges; sizes kept small so NL and
  // the brute-force oracle stay fast.
  QueryGraph q;
  switch (shape) {
    case Shape::kChain2: {
      int a = q.AddNodeSet(Range("A", 0, 8));
      int b = q.AddNodeSet(Range("B", 10, 18));
      DHTJOIN_CHECK(q.AddEdge(a, b).ok());
      break;
    }
    case Shape::kChain3: {
      int a = q.AddNodeSet(Range("A", 0, 6));
      int b = q.AddNodeSet(Range("B", 8, 14));
      int c = q.AddNodeSet(Range("C", 16, 22));
      DHTJOIN_CHECK(q.AddEdge(a, b).ok());
      DHTJOIN_CHECK(q.AddEdge(b, c).ok());
      break;
    }
    case Shape::kTriangle: {
      int a = q.AddNodeSet(Range("A", 0, 6));
      int b = q.AddNodeSet(Range("B", 8, 14));
      int c = q.AddNodeSet(Range("C", 16, 22));
      DHTJOIN_CHECK(q.AddEdge(a, b).ok());
      DHTJOIN_CHECK(q.AddEdge(b, c).ok());
      DHTJOIN_CHECK(q.AddEdge(a, c).ok());
      break;
    }
    case Shape::kTriangleBidir: {
      int a = q.AddNodeSet(Range("A", 0, 5));
      int b = q.AddNodeSet(Range("B", 8, 13));
      int c = q.AddNodeSet(Range("C", 16, 21));
      DHTJOIN_CHECK(q.AddBidirectionalEdge(a, b).ok());
      DHTJOIN_CHECK(q.AddBidirectionalEdge(b, c).ok());
      DHTJOIN_CHECK(q.AddBidirectionalEdge(a, c).ok());
      break;
    }
    case Shape::kStar4: {
      int hub = q.AddNodeSet(Range("HUB", 0, 5));
      int s1 = q.AddNodeSet(Range("S1", 8, 13));
      int s2 = q.AddNodeSet(Range("S2", 16, 21));
      int s3 = q.AddNodeSet(Range("S3", 24, 29));
      DHTJOIN_CHECK(q.AddEdge(hub, s1).ok());
      DHTJOIN_CHECK(q.AddEdge(hub, s2).ok());
      DHTJOIN_CHECK(q.AddEdge(hub, s3).ok());
      break;
    }
  }
  DHTJOIN_CHECK(q.Validate(g).ok());
  return q;
}

class NwayAgreement : public ::testing::TestWithParam<NwayCase> {};

TEST_P(NwayAgreement, AllAlgorithmsMatchBruteForce) {
  const auto& c = GetParam();
  Graph g = RandomGraph(32, 110, c.seed, /*undirected=*/true,
                        /*weighted=*/(c.seed % 2) == 0);
  DhtParams p =
      c.lambda > 0 ? DhtParams::Lambda(c.lambda) : DhtParams::Exponential();
  const int d = 8;
  QueryGraph query = MakeQuery(c.shape, g);
  SumAggregate sum;
  MinAggregate min;
  const Aggregate& f = c.use_min ? static_cast<const Aggregate&>(min)
                                 : static_cast<const Aggregate&>(sum);

  auto want = RefNwayJoin(g, p, d, query.sets(), query.edges(), f, c.k);

  std::vector<std::unique_ptr<NwayJoin>> algos;
  algos.push_back(std::make_unique<NestedLoopJoin>());
  algos.push_back(std::make_unique<AllPairsJoin>());
  algos.push_back(std::make_unique<PartialJoin>(
      PartialJoin::Options{.m = c.m, .incremental = false}));
  algos.push_back(std::make_unique<PartialJoin>(
      PartialJoin::Options{.m = c.m, .incremental = true}));

  for (auto& algo : algos) {
    auto got = algo->Run(g, p, d, query, f, c.k);
    ASSERT_TRUE(got.ok()) << algo->Name() << ": "
                          << got.status().ToString();
    ASSERT_EQ(got->size(), want.size()) << algo->Name();
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR((*got)[i].f, want[i].f, 1e-9)
          << algo->Name() << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NwayAgreement,
    ::testing::Values(
        NwayCase{301, Shape::kChain2, true, 0.2, 10, 5},
        NwayCase{302, Shape::kChain3, true, 0.2, 10, 5},
        NwayCase{303, Shape::kChain3, false, 0.2, 5, 3},
        NwayCase{304, Shape::kTriangle, true, 0.5, 8, 4},
        NwayCase{305, Shape::kTriangleBidir, true, 0.2, 6, 4},
        NwayCase{306, Shape::kStar4, true, 0.2, 10, 6},
        NwayCase{307, Shape::kStar4, false, 0.6, 5, 2},
        NwayCase{308, Shape::kChain3, true, 0.0, 10, 5},   // DHTe
        NwayCase{309, Shape::kTriangle, false, 0.0, 12, 8},
        NwayCase{310, Shape::kChain3, true, 0.2, 500, 5},  // k > tuples
        NwayCase{311, Shape::kChain2, false, 0.8, 20, 1},  // tiny m
        NwayCase{312, Shape::kTriangleBidir, false, 0.4, 15, 50}));

TEST(NwayJoinTest, EdgeScoresAreConsistent) {
  Graph g = RandomGraph(30, 100, 320);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kChain3, g);
  MinAggregate f;
  PartialJoin pji(PartialJoin::Options{.m = 10, .incremental = true});
  auto got = pji.Run(g, p, 8, query, f, 10);
  ASSERT_TRUE(got.ok());
  BackwardWalker w(g);
  for (const TupleAnswer& t : *got) {
    double lo = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < query.edges().size(); ++e) {
      NodeId u = t.nodes[static_cast<std::size_t>(query.edges()[e].left)];
      NodeId v = t.nodes[static_cast<std::size_t>(query.edges()[e].right)];
      w.Reset(p, ExtNodeId(v));
      w.Advance(8);
      EXPECT_NEAR(t.edge_scores[e], w.Score(ExtNodeId(u)), 1e-9);
      lo = std::min(lo, t.edge_scores[e]);
    }
    EXPECT_NEAR(t.f, lo, 1e-12);
  }
}

TEST(NwayJoinTest, NlRespectsTimeBudget) {
  Graph g = RandomGraph(32, 110, 321);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kStar4, g);
  MinAggregate f;
  NestedLoopJoin nl(NestedLoopJoin::Options{.time_budget_seconds = 0.0});
  auto got = nl.Run(g, p, 8, query, f, 5);
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(nl.stats().completed);
}

TEST(NwayJoinTest, ApBackwardEngineAgreesWithForward) {
  Graph g = RandomGraph(30, 100, 322);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kChain3, g);
  MinAggregate f;
  AllPairsJoin fwd(AllPairsJoin::Options{AllPairsJoin::Engine::kForward});
  AllPairsJoin bwd(AllPairsJoin::Options{AllPairsJoin::Engine::kBackward});
  auto a = fwd.Run(g, p, 8, query, f, 10);
  auto b = bwd.Run(g, p, 8, query, f, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR((*a)[i].f, (*b)[i].f, 1e-9);
  }
}

TEST(NwayJoinTest, PartialJoinStatsShowFractionUsed) {
  // The paper's observation: only a small fraction of the 2-way pair
  // space is consumed by the rank join.
  Graph g = RandomGraph(60, 200, 323);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 25));
  int b = q.AddNodeSet(Range("B", 30, 55));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  MinAggregate f;
  PartialJoin pji(PartialJoin::Options{.m = 10, .incremental = true});
  auto got = pji.Run(g, p, 8, q, f, 5);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(pji.stats().pulls_per_edge.size(), 1u);
  EXPECT_LT(pji.stats().pulls_per_edge[0],
            static_cast<int64_t>(25 * 25));  // far less than all pairs
}

TEST(QueryGraphTest, ValidationErrors) {
  Graph g = RandomGraph(20, 50, 324);
  QueryGraph q;
  EXPECT_FALSE(q.Validate(g).ok());  // no sets
  int a = q.AddNodeSet(Range("A", 0, 4));
  EXPECT_FALSE(q.Validate(g).ok());  // one set, no edges
  int b = q.AddNodeSet(Range("B", 5, 9));
  EXPECT_FALSE(q.Validate(g).ok());  // still no edges
  EXPECT_FALSE(q.AddEdge(a, a).ok());         // self edge
  EXPECT_FALSE(q.AddEdge(a, 7).ok());         // unknown set
  EXPECT_TRUE(q.AddEdge(a, b).ok());
  EXPECT_EQ(q.AddEdge(a, b).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(q.AddEdge(b, a).ok());  // opposite direction is distinct
  EXPECT_TRUE(q.Validate(g).ok());
  EXPECT_DOUBLE_EQ(q.CandidateSpace(), 16.0);
}

TEST(QueryGraphTest, EmptyNodeSetFailsValidation) {
  Graph g = RandomGraph(20, 50, 325);
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 4));
  int b = q.AddNodeSet(NodeSet("B", std::vector<NodeId>{}));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  EXPECT_FALSE(q.Validate(g).ok());
}

TEST(NwayJoinTest, RunsAreDeterministic) {
  // No hidden iteration-order nondeterminism anywhere in the stack:
  // repeated runs return bit-identical tuples and scores.
  Graph g = RandomGraph(40, 140, 327, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kTriangle, g);
  MinAggregate f;
  PartialJoin pji(PartialJoin::Options{.m = 10, .incremental = true});
  auto first = pji.Run(g, p, 8, query, f, 10);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = pji.Run(g, p, 8, query, f, 10);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->size(), first->size());
    for (std::size_t i = 0; i < first->size(); ++i) {
      EXPECT_EQ((*again)[i].nodes, (*first)[i].nodes) << "rank " << i;
      EXPECT_EQ((*again)[i].f, (*first)[i].f) << "rank " << i;
    }
  }
}

TEST(NwayJoinTest, AdaptivePullingMatchesRoundRobinEndToEnd) {
  Graph g = RandomGraph(36, 120, 328);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kChain3, g);
  MinAggregate f;
  PartialJoin rr(PartialJoin::Options{.m = 10, .incremental = true});
  PartialJoin ad(PartialJoin::Options{
      .m = 10,
      .incremental = true,
      .pull_strategy = PullStrategy::kAdaptive});
  auto a = rr.Run(g, p, 8, query, f, 15);
  auto b = ad.Run(g, p, 8, query, f, 15);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR((*a)[i].f, (*b)[i].f, 1e-12);
  }
}

TEST(NwayJoinTest, KZeroRejectedEverywhere) {
  Graph g = RandomGraph(30, 90, 326);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query = MakeQuery(Shape::kChain2, g);
  MinAggregate f;
  EXPECT_FALSE(NestedLoopJoin().Run(g, p, 8, query, f, 0).ok());
  EXPECT_FALSE(AllPairsJoin().Run(g, p, 8, query, f, 0).ok());
  EXPECT_FALSE(PartialJoin().Run(g, p, 8, query, f, 0).ok());
}

TEST(NwayJoinTest, DisconnectedSetsYieldEmptyResult) {
  // Two components; sets on different components can never join.
  GraphBuilder builder(8, true);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5).ok());
  ASSERT_TRUE(builder.AddEdge(5, 6).ok());
  Graph g = std::move(builder.Build()).value();
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph q;
  int a = q.AddNodeSet(NodeSet("A", {0, 1, 2}));
  int b = q.AddNodeSet(NodeSet("B", {4, 5, 6}));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  MinAggregate f;
  for (auto* algo : std::initializer_list<NwayJoin*>{}) {
    (void)algo;
  }
  NestedLoopJoin nl;
  PartialJoin pj(PartialJoin::Options{.m = 5, .incremental = false});
  PartialJoin pji(PartialJoin::Options{.m = 5, .incremental = true});
  for (NwayJoin* algo : {static_cast<NwayJoin*>(&nl),
                         static_cast<NwayJoin*>(&pj),
                         static_cast<NwayJoin*>(&pji)}) {
    auto got = algo->Run(g, p, 8, q, f, 5);
    ASSERT_TRUE(got.ok()) << algo->Name();
    EXPECT_TRUE(got->empty()) << algo->Name();
  }
}

}  // namespace
}  // namespace dhtjoin
