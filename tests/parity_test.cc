/// \file tests/parity_test.cc
/// \brief Cross-algorithm parity for the shared result semantics of
/// join2/two_way_join.h: floor-score (unreachable) pairs are excluded
/// by every algorithm via the same strict `score > beta` test (so
/// under-k results are uniform), and equal-score ties at the k-th
/// boundary resolve to the same (p, q)-ascending choice everywhere —
/// across the five 2-way algorithms, the incremental enumerator, and
/// NestedLoopJoin on a 2-set query.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/nl_join.h"
#include "join2/b_bj.h"
#include "join2/b_idj.h"
#include "join2/f_bj.h"
#include "join2/f_idj.h"
#include "join2/incremental.h"
#include "testing/reference.h"
#include "util/top_k.h"

namespace dhtjoin {
namespace {

using testing::Range;
using testing::StarGraph;

std::vector<std::unique_ptr<TwoWayJoin>> AllAlgorithms() {
  std::vector<std::unique_ptr<TwoWayJoin>> algos;
  algos.push_back(std::make_unique<FBjJoin>());
  algos.push_back(std::make_unique<FIdjJoin>());
  algos.push_back(std::make_unique<FIdjJoin>(FIdjJoin::Options{.resume = false}));
  algos.push_back(std::make_unique<BBjJoin>());
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX}));
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY}));
  algos.push_back(std::make_unique<BIdjJoin>(
      BIdjJoin::Options{.bound = UpperBoundKind::kY, .resume = false}));
  return algos;
}

/// Two weakly separated communities plus isolated nodes: most (p, q)
/// combinations are unreachable within d steps, so joins return far
/// fewer than k pairs.
Graph MostlyUnreachableGraph() {
  GraphBuilder b(20, /*undirected=*/false);
  // Community A: directed ring 0..5.
  for (NodeId u = 0; u < 6; ++u) {
    DHTJOIN_CHECK(b.AddEdge(u, (u + 1) % 6).ok());
  }
  // Community B: directed ring 8..13.
  for (NodeId u = 8; u < 14; ++u) {
    DHTJOIN_CHECK(b.AddEdge(u, u == 13 ? 8 : u + 1).ok());
  }
  // One-way bridge A -> B only.
  DHTJOIN_CHECK(b.AddEdge(2, 9, 0.5).ok());
  // Nodes 14..19 isolated except a sink edge into 14 (nothing leaves).
  DHTJOIN_CHECK(b.AddEdge(5, 14).ok());
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// Drains the incremental enumerator into the standard result form.
std::vector<ScoredPair> DrainIncremental(const Graph& g, const DhtParams& p,
                                         int d, const NodeSet& P,
                                         const NodeSet& Q, std::size_t k) {
  auto join = IncrementalTwoWayJoin::Create(g, p, d, P, Q, k);
  DHTJOIN_CHECK(join.ok());
  std::vector<ScoredPair> out;
  while (out.size() < k) {
    auto next = (*join)->Next();
    if (!next.has_value()) break;
    out.push_back(*next);
  }
  return out;
}

/// Runs NestedLoopJoin on the 2-set query (P) -edge-> (Q) and lifts the
/// tuple answers back into scored pairs.
std::vector<ScoredPair> NlAsTwoWay(const Graph& g, const DhtParams& p, int d,
                                   const NodeSet& P, const NodeSet& Q,
                                   std::size_t k) {
  QueryGraph query;
  int a = query.AddNodeSet(P);
  int b = query.AddNodeSet(Q);
  DHTJOIN_CHECK(query.AddEdge(a, b).ok());
  NestedLoopJoin nl;
  MinAggregate f;
  auto got = nl.Run(g, p, d, query, f, k);
  DHTJOIN_CHECK(got.ok());
  std::vector<ScoredPair> out;
  for (const TupleAnswer& t : *got) {
    out.push_back(ScoredPair{t.nodes[0], t.nodes[1], t.edge_scores[0]});
  }
  return out;
}

TEST(ParityTest, UnderKSemanticsUniformAcrossAlgorithms) {
  Graph g = MostlyUnreachableGraph();
  const int d = 6;
  NodeSet P = Range("P", 0, 10);   // community A + a bit of B
  NodeSet Q = Range("Q", 8, 20);   // community B + unreachable tail
  const std::size_t k = 500;       // far above the valid pair count
  for (const DhtParams& p :
       {DhtParams::Lambda(0.2), DhtParams::Exponential(),
        DhtParams::PersonalizedPageRank(0.7)}) {
    auto want = testing::RefTwoWayJoin(g, p, d, P, Q, k);
    ASSERT_GT(want.size(), 0u);
    // Many pairs must be invalid for this test to bite.
    ASSERT_LT(want.size(), P.size() * Q.size() / 2);
    for (auto& algo : AllAlgorithms()) {
      auto got = algo->Run(g, p, d, P, Q, k);
      ASSERT_TRUE(got.ok()) << algo->Name();
      ASSERT_EQ(got->size(), want.size())
          << algo->Name() << ": under-k count diverges (floor-score "
          << "pairs must be dropped uniformly)";
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*got)[i].p, want[i].p) << algo->Name() << " rank " << i;
        EXPECT_EQ((*got)[i].q, want[i].q) << algo->Name() << " rank " << i;
        EXPECT_NEAR((*got)[i].score, want[i].score, 1e-12)
            << algo->Name() << " rank " << i;
      }
    }
    auto inc = DrainIncremental(g, p, d, P, Q, k);
    ASSERT_EQ(inc.size(), want.size()) << "incremental under-k diverges";
    auto nl = NlAsTwoWay(g, p, d, P, Q, k);
    ASSERT_EQ(nl.size(), want.size()) << "NL under-k diverges";
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(nl[i].p, want[i].p) << "NL rank " << i;
      EXPECT_EQ(nl[i].q, want[i].q) << "NL rank " << i;
    }
  }
}

TEST(ParityTest, TieBreaksAreDeterministicAcrossAlgorithms) {
  // Star: every leaf has the identical score to the hub, so the top-k
  // boundary is one big tie; each algorithm computes the tied scores
  // with identical FP operations internally, so the (p, q)-ascending
  // tie policy must pick exactly the same pairs everywhere.
  Graph g = StarGraph(12);
  DhtParams p = DhtParams::Lambda(0.3);
  const int d = 8;
  NodeSet P = Range("P", 1, 11);  // leaves
  NodeSet Q("Q", std::vector<NodeId>{0});  // hub
  const std::size_t k = 4;        // < 10 tied pairs
  std::vector<ScoredPair> expect;
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    expect.push_back(ScoredPair{leaf, 0, 0.0});  // smallest (p, q) win
  }
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, d, P, Q, k);
    ASSERT_TRUE(got.ok()) << algo->Name();
    ASSERT_EQ(got->size(), k) << algo->Name();
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ((*got)[i].p, expect[i].p) << algo->Name() << " rank " << i;
      EXPECT_EQ((*got)[i].q, expect[i].q) << algo->Name() << " rank " << i;
    }
  }
  auto nl = NlAsTwoWay(g, p, d, P, Q, k);
  ASSERT_EQ(nl.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(nl[i].p, expect[i].p) << "NL rank " << i;
  }
}

TEST(ParityTest, TopKTieBreakRetainsPreferredItems) {
  // Unit-level: at a tied boundary the preferred (smaller) item wins
  // regardless of arrival order.
  PairTopK heap(2);
  heap.Offer(1.0, ScoredPair{5, 5, 1.0});
  heap.Offer(1.0, ScoredPair{3, 3, 1.0});
  heap.Offer(1.0, ScoredPair{4, 4, 1.0});
  heap.Offer(1.0, ScoredPair{9, 9, 1.0});
  auto entries = heap.TakeSortedDescending();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].item.p, 3);
  EXPECT_EQ(entries[1].item.p, 4);

  // Higher keys still dominate the tie policy.
  PairTopK heap2(2);
  heap2.Offer(1.0, ScoredPair{1, 1, 1.0});
  heap2.Offer(2.0, ScoredPair{9, 9, 2.0});
  heap2.Offer(1.0, ScoredPair{2, 2, 1.0});
  auto entries2 = heap2.TakeSortedDescending();
  ASSERT_EQ(entries2.size(), 2u);
  EXPECT_EQ(entries2[0].item.p, 9);
  EXPECT_EQ(entries2[1].item.p, 1);
}

TEST(ParityTest, NlTableAndPerTuplePathsAgree) {
  // Forcing max_table_bytes = 0 exercises NL's O(1)-memory per-tuple
  // fallback; it must return the same answers as the batched tables.
  Graph g = MostlyUnreachableGraph();
  DhtParams p = DhtParams::Lambda(0.3);
  QueryGraph query;
  int a = query.AddNodeSet(Range("P", 0, 10));
  int b = query.AddNodeSet(Range("Q", 8, 16));
  DHTJOIN_CHECK(query.AddEdge(a, b).ok());
  MinAggregate f;
  NestedLoopJoin tabled;
  NestedLoopJoin per_tuple(
      NestedLoopJoin::Options{.max_table_bytes = 0});
  auto x = tabled.Run(g, p, 6, query, f, 20);
  auto y = per_tuple.Run(g, p, 6, query, f, 20);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  ASSERT_EQ(x->size(), y->size());
  for (std::size_t i = 0; i < x->size(); ++i) {
    EXPECT_EQ((*x)[i].nodes, (*y)[i].nodes) << "rank " << i;
    EXPECT_NEAR((*x)[i].f, (*y)[i].f, 1e-12) << "rank " << i;
  }
}

TEST(ParityTest, ExactFloorScoresAreExcludedEverywhere) {
  // A pair whose only walks exceed depth d scores exactly beta at depth
  // d — the floor — and must be excluded, not returned as a zero-signal
  // filler, even when that leaves fewer than k results.
  Graph g = testing::PathGraph(6);  // 0 -> 1 -> ... -> 5
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = 2;
  NodeSet P("P", std::vector<NodeId>{0});
  NodeSet Q("Q", {1, 2, 3, 4, 5});  // only 1 and 2 reachable within 2
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, d, P, Q, 10);
    ASSERT_TRUE(got.ok()) << algo->Name();
    ASSERT_EQ(got->size(), 2u) << algo->Name();
    EXPECT_EQ((*got)[0].q, 1) << algo->Name();
    EXPECT_EQ((*got)[1].q, 2) << algo->Name();
    for (const ScoredPair& sp : *got) {
      EXPECT_GT(sp.score, p.beta) << algo->Name();
    }
  }
  auto nl = NlAsTwoWay(g, p, d, P, Q, 10);
  ASSERT_EQ(nl.size(), 2u);
  auto inc = DrainIncremental(g, p, d, P, Q, 10);
  ASSERT_EQ(inc.size(), 2u);
}

}  // namespace
}  // namespace dhtjoin
