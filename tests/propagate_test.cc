/// \file tests/propagate_test.cc
/// \brief The frontier-adaptive propagation engine vs the dense
/// reference sweep, and the batched backward evaluator vs a sequential
/// walker loop — on every graph fixture, under both first-hit (DHT) and
/// visiting (PPR) semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/forward.h"
#include "dht/propagate.h"
#include "testing/reference.h"
#include "util/thread_pool.h"

namespace dhtjoin {
namespace {

using testing::CycleGraph;
using testing::PathGraph;
using testing::RandomGraph;
using testing::StarGraph;
using testing::TwoCommunityGraph;

constexpr double kTol = 1e-12;

struct Fixture {
  const char* name;
  Graph graph;
};

std::vector<Fixture> Fixtures() {
  std::vector<Fixture> out;
  out.push_back({"path", PathGraph(8)});
  out.push_back({"cycle", CycleGraph(7)});
  out.push_back({"star", StarGraph(9)});
  out.push_back({"two_community", TwoCommunityGraph()});
  out.push_back({"random_sparse", RandomGraph(40, 60, 31, true, true)});
  out.push_back({"random_denser", RandomGraph(30, 140, 32, false, true)});
  return out;
}

std::vector<DhtParams> Semantics() {
  return {DhtParams::Lambda(0.2), DhtParams::Lambda(0.8),
          DhtParams::Exponential(), DhtParams::PersonalizedPageRank(0.7)};
}

// ----------------------------------------- sparse/adaptive == dense

TEST(PropagateTest, BackwardModesAgreeOnAllFixtures) {
  for (auto& fx : Fixtures()) {
    for (const DhtParams& p : Semantics()) {
      BackwardWalker dense(fx.graph, PropagationMode::kDense);
      BackwardWalker sparse(fx.graph, PropagationMode::kSparse);
      BackwardWalker adaptive(fx.graph, PropagationMode::kAdaptive);
      for (NodeId q = 0; q < fx.graph.num_nodes(); q += 3) {
        dense.Reset(p, ExtNodeId(q));
        sparse.Reset(p, ExtNodeId(q));
        adaptive.Reset(p, ExtNodeId(q));
        dense.Advance(10);
        sparse.Advance(10);
        adaptive.Advance(10);
        for (NodeId u = 0; u < fx.graph.num_nodes(); ++u) {
          EXPECT_NEAR(sparse.Score(ExtNodeId(u)), dense.Score(ExtNodeId(u)),
                      kTol)
              << fx.name << " first_hit=" << p.first_hit << " q=" << q
              << " u=" << u;
          EXPECT_NEAR(adaptive.Score(ExtNodeId(u)), dense.Score(ExtNodeId(u)),
                      kTol)
              << fx.name << " first_hit=" << p.first_hit << " q=" << q
              << " u=" << u;
        }
      }
    }
  }
}

TEST(PropagateTest, ForwardModesAgreeOnAllFixtures) {
  for (auto& fx : Fixtures()) {
    for (const DhtParams& p : Semantics()) {
      ForwardWalker dense(fx.graph, PropagationMode::kDense);
      ForwardWalker sparse(fx.graph, PropagationMode::kSparse);
      ForwardWalker adaptive(fx.graph, PropagationMode::kAdaptive);
      const NodeId n = fx.graph.num_nodes();
      for (NodeId u : {NodeId{0}, static_cast<NodeId>(n / 2)}) {
        for (NodeId v : {static_cast<NodeId>(n - 1), NodeId{1}}) {
          if (u == v) continue;
          const int d = 9;
          dense.Reset(p, ExtNodeId(u), ExtNodeId(v));
          sparse.Reset(p, ExtNodeId(u), ExtNodeId(v));
          adaptive.Reset(p, ExtNodeId(u), ExtNodeId(v));
          dense.Advance(d);
          sparse.Advance(d);
          adaptive.Advance(d);
          EXPECT_NEAR(sparse.Score(), dense.Score(), kTol) << fx.name;
          EXPECT_NEAR(adaptive.Score(), dense.Score(), kTol) << fx.name;
          for (int i = 1; i <= d; ++i) {
            EXPECT_NEAR(sparse.HitProbability(i), dense.HitProbability(i),
                        kTol)
                << fx.name << " i=" << i;
            EXPECT_NEAR(adaptive.HitProbability(i), dense.HitProbability(i),
                        kTol)
                << fx.name << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(PropagateTest, SparseResumableAdvanceMatchesOneShot) {
  Graph g = RandomGraph(25, 70, 33);
  DhtParams p = DhtParams::Lambda(0.5);
  BackwardWalker a(g, PropagationMode::kSparse);
  BackwardWalker b(g, PropagationMode::kSparse);
  a.Reset(p, ExtNodeId(4));
  a.Advance(8);
  b.Reset(p, ExtNodeId(4));
  b.Advance(3);
  b.Advance(5);  // resumed: must be bit-identical, not just close
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(a.Score(ExtNodeId(u)), b.Score(ExtNodeId(u)));
  }
}

// ----------------------------------------------- engine-level checks

TEST(PropagateTest, SparseStepsRelaxFewerEdgesOnLocalizedWalks) {
  // Backward walk from a star leaf: the frontier is {leaf}, then {hub},
  // then all leaves — far below the dense m-per-step cost.
  Graph g = StarGraph(64);
  Propagator dense(g, Propagator::Direction::kBackward,
                   PropagationMode::kDense);
  Propagator adaptive(g, Propagator::Direction::kBackward,
                      PropagationMode::kAdaptive);
  dense.Reset(IntNodeId(1));
  adaptive.Reset(IntNodeId(1));
  dense.Step();
  adaptive.Step();
  EXPECT_LT(adaptive.edges_relaxed(), dense.edges_relaxed() / 4);
}

TEST(PropagateTest, AdaptiveGoesDenseOnSaturatedFrontier) {
  // On a complete graph the frontier saturates after one step; the
  // adaptive engine must fall back to the dense sweep instead of paying
  // the sparse-push penalty on a full frontier.
  Graph g = testing::CompleteGraph(24);
  Propagator adaptive(g, Propagator::Direction::kBackward,
                      PropagationMode::kAdaptive);
  adaptive.Reset(IntNodeId(0));
  adaptive.Step();  // frontier: 23 in-neighbors of node 0
  adaptive.Step();  // frontier: everything
  EXPECT_TRUE(adaptive.last_step_dense());
}

TEST(PropagateTest, MassConservedWithoutAbsorption) {
  // A PPR-style (non-absorbing) walk on a graph with no sinks keeps
  // total mass at exactly... well, within FP error of 1.
  Graph g = CycleGraph(11);
  for (auto mode : {PropagationMode::kDense, PropagationMode::kSparse,
                    PropagationMode::kAdaptive}) {
    Propagator engine(g, Propagator::Direction::kForward, mode);
    engine.Reset(IntNodeId(3));
    for (int s = 0; s < 25; ++s) engine.Step();
    double total = 0.0;
    engine.ForEachMass([&](NodeId, double m) { total += m; });
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(PropagateTest, ResetDropsAllMass) {
  Graph g = TwoCommunityGraph();
  Propagator engine(g, Propagator::Direction::kBackward,
                    PropagationMode::kAdaptive);
  engine.Reset(IntNodeId(0));
  for (int s = 0; s < 6; ++s) engine.Step();
  engine.Reset(IntNodeId(5));
  double total = 0.0;
  int count = 0;
  engine.ForEachMass([&](NodeId u, double m) {
    total += m;
    ++count;
    EXPECT_EQ(u, 5);
  });
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(total, 1.0);
}

// ------------------------------------------------- batched evaluator

TEST(BackwardWalkerBatchTest, MatchesSequentialWalkerLoop) {
  // The issue's acceptance shape: batch(T, S) == per-target sequential
  // walks, for target counts that exercise full and partial lane blocks.
  Graph g = RandomGraph(50, 160, 34, true, true);
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 20; ++u) sources.push_back(ExtNodeId(u));
  for (const DhtParams& p : Semantics()) {
    for (std::size_t num_targets : {1u, 7u, 8u, 9u, 30u}) {
      std::vector<ExtNodeId> targets;
      for (std::size_t i = 0; i < num_targets; ++i) {
        targets.push_back(ExtNodeId(static_cast<NodeId>((i * 3 + 10) % 50)));
      }
      BackwardWalkerBatch batch(g);
      std::vector<double> got = batch.Run(p, 8, targets, sources);
      ASSERT_EQ(got.size(), targets.size() * sources.size());
      BackwardWalker walker(g);
      for (std::size_t t = 0; t < targets.size(); ++t) {
        walker.Reset(p, targets[t]);
        walker.Advance(8);
        for (std::size_t s = 0; s < sources.size(); ++s) {
          EXPECT_NEAR(got[t * sources.size() + s], walker.Score(sources[s]),
                      kTol)
              << "first_hit=" << p.first_hit << " T=" << num_targets
              << " t=" << t << " s=" << s;
        }
      }
    }
  }
}

TEST(BackwardWalkerBatchTest, DuplicateTargetsShareALaneRow) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> targets = {ExtNodeId(7), ExtNodeId(7), ExtNodeId(2), ExtNodeId(7)};  // dups in a block
  std::vector<ExtNodeId> sources = {ExtNodeId(0), ExtNodeId(1), ExtNodeId(3), ExtNodeId(9)};
  BackwardWalkerBatch batch(g);
  std::vector<double> got = batch.Run(p, 6, targets, sources);
  BackwardWalker walker(g);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    walker.Reset(p, targets[t]);
    walker.Advance(6);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      EXPECT_NEAR(got[t * sources.size() + s], walker.Score(sources[s]),
                  kTol);
    }
  }
}

TEST(BackwardWalkerBatchTest, ThreadCountDoesNotChangeResults) {
  Graph g = RandomGraph(60, 200, 35);
  DhtParams p = DhtParams::Lambda(0.4);
  std::vector<ExtNodeId> targets;
  for (NodeId q = 0; q < 40; ++q) targets.push_back(ExtNodeId(q));
  std::vector<ExtNodeId> sources = {ExtNodeId(41), ExtNodeId(45), ExtNodeId(50), ExtNodeId(59)};
  BackwardWalkerBatch one(g, {.num_threads = 1});
  BackwardWalkerBatch four(g, {.num_threads = 4});
  std::vector<double> a = one.Run(p, 8, targets, sources);
  std::vector<double> b = four.Run(p, 8, targets, sources);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Blocks are deterministic regardless of which worker runs them.
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "i=" << i;
  }
  EXPECT_EQ(one.edges_relaxed(), four.edges_relaxed());
}

TEST(BackwardWalkerBatchTest, DenseModeMatchesAdaptive) {
  Graph g = RandomGraph(40, 120, 36);
  DhtParams p = DhtParams::Exponential();
  std::vector<ExtNodeId> targets = {ExtNodeId(0), ExtNodeId(5), ExtNodeId(9), ExtNodeId(13),
                                    ExtNodeId(17), ExtNodeId(21), ExtNodeId(25), ExtNodeId(29),
                                    ExtNodeId(33)};
  std::vector<ExtNodeId> sources = {ExtNodeId(2), ExtNodeId(3), ExtNodeId(4), ExtNodeId(38)};
  BackwardWalkerBatch dense(g, {.mode = PropagationMode::kDense});
  BackwardWalkerBatch adaptive(g, {.mode = PropagationMode::kAdaptive});
  std::vector<double> a = dense.Run(p, 8, targets, sources);
  std::vector<double> b = adaptive.Run(p, 8, targets, sources);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], kTol);
  }
  EXPECT_LE(adaptive.edges_relaxed(), dense.edges_relaxed());
}

TEST(BackwardWalkerBatchTest, RunChunkedMatchesSingleRunAcrossSlices) {
  // Forcing a 3-target slice exercises the multi-chunk path the joins
  // rely on for all-pairs memory bounding.
  Graph g = RandomGraph(40, 120, 37);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> targets = {ExtNodeId(0), ExtNodeId(4), ExtNodeId(8), ExtNodeId(12),
                                    ExtNodeId(16), ExtNodeId(20), ExtNodeId(24), ExtNodeId(28),
                                    ExtNodeId(32), ExtNodeId(36)};
  std::vector<ExtNodeId> sources = {ExtNodeId(1), ExtNodeId(2), ExtNodeId(3), ExtNodeId(39)};
  BackwardWalkerBatch batch(g);
  std::vector<double> whole = batch.Run(p, 8, targets, sources);
  std::vector<double> chunked(whole.size(), 0.0);
  std::vector<int> rows_seen(targets.size(), 0);
  batch.RunChunked(
      p, 8, targets, sources,
      [&](std::size_t t, const double* row) {
        rows_seen[t]++;
        std::copy(row, row + sources.size(), &chunked[t * sources.size()]);
      },
      /*max_targets_per_run=*/3);
  for (int seen : rows_seen) EXPECT_EQ(seen, 1);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_DOUBLE_EQ(chunked[i], whole[i]) << "i=" << i;
  }
}

TEST(BackwardWalkerBatchTest, RepeatedRunsReuseStatesCleanly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<ExtNodeId> targets = {ExtNodeId(0), ExtNodeId(5)};
  std::vector<ExtNodeId> sources = {ExtNodeId(1), ExtNodeId(9)};
  BackwardWalkerBatch batch(g, {.num_threads = 1});
  std::vector<double> first = batch.Run(p, 8, targets, sources);
  batch.Run(p, 3, {&targets[1], 1}, sources);  // perturb the workspace
  std::vector<double> again = batch.Run(p, 8, targets, sources);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], again[i]);
  }
}

// ------------------------------------------------------- thread pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 3}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(static_cast<int64_t>(hits.size()),
                     [&](int64_t i) { hits[static_cast<std::size_t>(i)]++; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, WaitDrainsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done++; });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace dhtjoin
