/// \file tests/util_test.cc
/// \brief Unit tests for src/util: Status/Result, TopK, MutableHeap, Rng,
/// TablePrinter.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "util/mutable_heap.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/top_k.h"

namespace dhtjoin {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIOError,
        StatusCode::kAlreadyExists, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  DHTJOIN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kOutOfRange);
}

Result<int> MakeValue(bool ok) {
  if (!ok) return Status::Internal("boom");
  return 7;
}

Result<int> UsesAssignOrReturn(bool ok) {
  DHTJOIN_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(UsesAssignOrReturn(true).value(), 8);
  EXPECT_EQ(UsesAssignOrReturn(false).status().code(), StatusCode::kInternal);
}

// ----------------------------------------------------------------- TopK

TEST(TopKTest, KeepsLargestK) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Offer(i, i);
  auto sorted = top.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].item, 9);
  EXPECT_EQ(sorted[1].item, 8);
  EXPECT_EQ(sorted[2].item, 7);
}

TEST(TopKTest, ThresholdIsNegInfUntilFull) {
  TopK<int> top(2);
  EXPECT_EQ(top.Threshold(), -std::numeric_limits<double>::infinity());
  top.Offer(5.0, 1);
  EXPECT_EQ(top.Threshold(), -std::numeric_limits<double>::infinity());
  top.Offer(3.0, 2);
  EXPECT_DOUBLE_EQ(top.Threshold(), 3.0);
  top.Offer(10.0, 3);
  EXPECT_DOUBLE_EQ(top.Threshold(), 5.0);
}

TEST(TopKTest, OfferBelowThresholdRejected) {
  TopK<int> top(1);
  EXPECT_TRUE(top.Offer(5.0, 1));
  EXPECT_FALSE(top.Offer(4.0, 2));
  EXPECT_TRUE(top.Offer(6.0, 3));
  EXPECT_EQ(top.TakeSortedDescending()[0].item, 3);
}

TEST(TopKTest, NegativeKeysWork) {
  // DHTlambda scores are negative; TopK must not assume positivity.
  TopK<int> top(2);
  top.Offer(-1.25, 1);
  top.Offer(-0.9, 2);
  top.Offer(-1.1, 3);
  auto sorted = top.TakeSortedDescending();
  EXPECT_EQ(sorted[0].item, 2);
  EXPECT_EQ(sorted[1].item, 3);
}

TEST(TopKTest, ClearResets) {
  TopK<int> top(2);
  top.Offer(1.0, 1);
  top.Clear();
  EXPECT_TRUE(top.empty());
  EXPECT_EQ(top.Threshold(), -std::numeric_limits<double>::infinity());
}

// ----------------------------------------------------------- MutableHeap

TEST(MutableHeapTest, PushPopOrdered) {
  MutableHeap<std::string> heap;
  heap.Push(1.0, "a");
  heap.Push(3.0, "c");
  heap.Push(2.0, "b");
  EXPECT_EQ(heap.Pop(), "c");
  EXPECT_EQ(heap.Pop(), "b");
  EXPECT_EQ(heap.Pop(), "a");
  EXPECT_TRUE(heap.empty());
}

TEST(MutableHeapTest, UpdateReordersBothDirections) {
  MutableHeap<int> heap;
  auto h1 = heap.Push(1.0, 1);
  auto h2 = heap.Push(2.0, 2);
  heap.Update(h1, 5.0);  // increase
  EXPECT_EQ(heap.TopHandle(), h1);
  heap.Update(h1, 0.5);  // decrease
  EXPECT_EQ(heap.TopHandle(), h2);
}

TEST(MutableHeapTest, EraseMiddle) {
  MutableHeap<int> heap;
  heap.Push(1.0, 1);
  auto h2 = heap.Push(2.0, 2);
  heap.Push(3.0, 3);
  heap.Erase(h2);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.Pop(), 3);
  EXPECT_EQ(heap.Pop(), 1);
}

TEST(MutableHeapTest, SecondPriority) {
  MutableHeap<int> heap;
  EXPECT_EQ(heap.SecondPriority(),
            -std::numeric_limits<double>::infinity());
  heap.Push(5.0, 1);
  EXPECT_EQ(heap.SecondPriority(),
            -std::numeric_limits<double>::infinity());
  heap.Push(3.0, 2);
  EXPECT_DOUBLE_EQ(heap.SecondPriority(), 3.0);
  heap.Push(4.0, 3);
  EXPECT_DOUBLE_EQ(heap.SecondPriority(), 4.0);
}

TEST(MutableHeapTest, HandleRecyclingAfterErase) {
  MutableHeap<int> heap;
  auto h1 = heap.Push(1.0, 1);
  heap.Erase(h1);
  auto h2 = heap.Push(2.0, 2);
  EXPECT_EQ(heap.Get(h2), 2);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(MutableHeapTest, StressAgainstSortedVector) {
  MutableHeap<int> heap;
  Rng rng(99);
  std::vector<std::pair<double, int>> model;
  std::vector<MutableHeap<int>::Handle> handles;
  for (int i = 0; i < 500; ++i) {
    double pri = rng.NextDouble();
    handles.push_back(heap.Push(pri, i));
    model.emplace_back(pri, i);
  }
  // Random updates.
  for (int i = 0; i < 200; ++i) {
    auto idx = static_cast<std::size_t>(rng.Below(model.size()));
    double pri = rng.NextDouble();
    heap.Update(handles[idx], pri);
    model[idx].first = pri;
  }
  // Drain and compare orderings by priority.
  std::sort(model.begin(), model.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  for (const auto& [pri, item] : model) {
    EXPECT_DOUBLE_EQ(heap.TopPriority(), pri);
    heap.Pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(MutableHeapTest, ForEachVisitsAllLiveEntries) {
  MutableHeap<int> heap;
  heap.Push(1.0, 10);
  auto h = heap.Push(2.0, 20);
  heap.Push(3.0, 30);
  heap.Erase(h);
  std::set<int> seen;
  heap.ForEach([&seen](int item, double) { seen.insert(item); });
  EXPECT_EQ(seen, (std::set<int>{10, 30}));
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RngTest, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Between(-2, 2));
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(5);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Geometric(0.5);
  EXPECT_NEAR(sum / trials, 2.0, 0.05);  // E[Geom(0.5)] = 2
}

// --------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter t("demo", {"alg", "time"});
  t.AddRow({"PJ-i", "0.5s"});
  t.AddRow({"NL", "1000s"});
  std::string out = t.Render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("PJ-i"), std::string::npos);
  EXPECT_NE(out.find("1000s"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t("demo", {"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RenderCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, NumAndSecsFormat) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Secs(2.5), "2.50s");
  EXPECT_EQ(TablePrinter::Secs(0.0025), "2.50ms");
  EXPECT_EQ(TablePrinter::Secs(0.0000025), "2.5us");
}

}  // namespace
}  // namespace dhtjoin
