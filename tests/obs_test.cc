/// \file tests/obs_test.cc
/// \brief Observability primitives (DESIGN.md §11): FakeClock,
/// counters/gauges, log2 histograms with deterministic quantile
/// bounds, registry snapshots, the JSON/Prometheus export surface, the
/// slow-query ring, and the ThreadPool task histograms.
///
/// Everything here is exact: with an injected FakeClock and quiesced
/// writers, every counter value, bucket count, quantile bound, and
/// exported byte is pinned — telemetry that drifts is telemetry that
/// cannot gate CI.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/metrics.h"
#include "obs/clock.h"
#include "persist/metrics.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"
#include "util/thread_pool.h"

namespace dhtjoin {
namespace {

// ------------------------------------------------------------- clock

TEST(FakeClockTest, AdvancesOnlyWhenTold) {
  obs::FakeClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  EXPECT_EQ(clock.NowNanos(), 100);  // time does not flow on its own
  clock.AdvanceNanos(5);
  EXPECT_EQ(clock.NowNanos(), 105);
  clock.AdvanceMicros(2);
  EXPECT_EQ(clock.NowNanos(), 2105);
  clock.AdvanceMillis(1);
  EXPECT_EQ(clock.NowNanos(), 1002105);
  clock.Set(42);
  EXPECT_EQ(clock.NowNanos(), 42);
}

TEST(FakeClockTest, SystemClockIsMonotone) {
  const obs::Clock* clock = obs::SystemClock::Get();
  const int64_t a = clock->NowNanos();
  const int64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

// --------------------------------------------------- counters/gauges

TEST(MetricsTest, CounterSumsAcrossAdds) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Add(-2);  // deltas may be negative (fold-backs)
  EXPECT_EQ(c.Value(), 40);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  obs::Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.Value(), 3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
}

// --------------------------------------------------------- histogram

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly 0 (and clamped negatives); bucket b >= 1
  // holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketOf(-7), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketOf(1024), 11);

  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(10), 1023);
}

TEST(MetricsTest, HistogramQuantileBoundsAreDeterministic) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("t.h");
  // 90 fast samples in [2^4, 2^5) and 10 slow ones in [2^10, 2^11):
  // p50 lands in the fast bucket, p95/p99 in the slow one.
  for (int i = 0; i < 90; ++i) h->Record(16);
  for (int i = 0; i < 10; ++i) h->Record(1024);
  EXPECT_EQ(h->Count(), 100);
  EXPECT_EQ(h->Sum(), 90 * 16 + 10 * 1024);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::HistogramSnapshot* hs = snap.FindHistogram("t.h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100);
  EXPECT_EQ(hs->QuantileBound(0.50), 31);    // bucket of 16: [16, 31]
  EXPECT_EQ(hs->QuantileBound(0.90), 31);    // 90th sample is still fast
  EXPECT_EQ(hs->QuantileBound(0.95), 2047);  // bucket of 1024
  EXPECT_EQ(hs->QuantileBound(0.99), 2047);
  EXPECT_DOUBLE_EQ(hs->Mean(), (90.0 * 16 + 10 * 1024) / 100.0);
}

TEST(MetricsTest, EmptyHistogramQuantilesAreZero) {
  obs::HistogramSnapshot hs;
  EXPECT_EQ(hs.QuantileBound(0.5), 0);
  EXPECT_EQ(hs.QuantileBound(0.99), 0);
  EXPECT_EQ(hs.Mean(), 0.0);
}

// ---------------------------------------------------------- registry

TEST(MetricsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.count");
  obs::Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);  // hot paths cache this pointer once
  a->Add(7);
  EXPECT_EQ(b->Value(), 7);
}

TEST(MetricsTest, SnapshotListsEachKindSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("z.second")->Add(2);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("m.gauge")->Set(0.5);
  registry.GetHistogram("q.hist")->Record(4);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.second");
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.FindCounter("z.second")->value, 2);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
  EXPECT_EQ(snap.FindGauge("m.gauge")->value, 0.5);
  EXPECT_EQ(snap.FindHistogram("q.hist")->count, 1);
}

// ------------------------------------------------------------ export

TEST(ExportTest, MetricsSnapshotJsonIsBytePinned) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(3);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("g.ratio")->Set(0.25);
  obs::Histogram* h = registry.GetHistogram("h.lat");
  h->Record(16);
  h->Record(16);

  EXPECT_EQ(obs::ToJson(registry.Snapshot()),
            "{\"a.count\": 1, \"b.count\": 3, \"g.ratio\": 0.25, "
            "\"h.lat.count\": 2, \"h.lat.sum\": 32, \"h.lat.mean\": 16, "
            "\"h.lat.p50\": 31, \"h.lat.p95\": 31, \"h.lat.p99\": 31}");
}

TEST(ExportTest, PrometheusTextExposesTypedSeries) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.query.twoway")->Add(5);
  registry.GetGauge("serve.cache.hit_rate")->Set(0.75);
  registry.GetHistogram("serve.query.latency_ns")->Record(1024);

  const std::string text = obs::ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE dhtjoin_serve_query_twoway counter\n"
                      "dhtjoin_serve_query_twoway 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dhtjoin_serve_cache_hit_rate gauge\n"
                      "dhtjoin_serve_cache_hit_rate 0.75\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dhtjoin_serve_query_latency_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("dhtjoin_serve_query_latency_ns{quantile=\"0.99\"} "
                      "2047\n"),
            std::string::npos);
  EXPECT_NE(text.find("dhtjoin_serve_query_latency_ns_count 1\n"),
            std::string::npos);
  // Dots are sanitized — no raw metric names leak into the exposition.
  EXPECT_EQ(text.find("serve.query"), std::string::npos);
}

TEST(ExportTest, TwoWayJoinStatsJsonMatchesHistoricalPrintfBytes) {
  TwoWayJoinStats st;
  st.walk_steps = 279522;
  st.walks_started = 87;
  st.pool_barriers = 4;
  st.barriers_per_iteration = {1, 1, 2};
  st.state_hits = 41;
  st.state_misses = 87;
  st.state_evictions = 3;
  st.partial.degraded = true;
  st.partial.level_reached = 6;
  st.partial.eps_bound = 0.001953125;

  // The exact bytes `dhtjoin_cli join2` printed before the export
  // helper existed (same keys, order, spacing, and %.9g doubles).
  char expected[512];
  std::snprintf(
      expected, sizeof(expected),
      "{\"walk_steps\": %lld, \"walks_started\": %lld, "
      "\"pool_barriers\": %lld, \"barriers_per_iteration\": [1, 1, 2], "
      "\"state_hits\": %lld, \"state_misses\": %lld, "
      "\"state_evictions\": %lld, \"degraded\": %s, "
      "\"level_reached\": %d, \"eps_bound\": %.9g}",
      static_cast<long long>(st.walk_steps),
      static_cast<long long>(st.walks_started),
      static_cast<long long>(st.pool_barriers),
      static_cast<long long>(st.state_hits),
      static_cast<long long>(st.state_misses),
      static_cast<long long>(st.state_evictions),
      st.partial.degraded ? "true" : "false", st.partial.level_reached,
      st.partial.eps_bound);
  EXPECT_EQ(obs::ToJson(st), expected);
}

// ---------------------------------------------------- slow-query log

TEST(SlowQueryLogTest, RingKeepsMostRecentOldestFirst) {
  obs::SlowQueryLog log(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Record("q" + std::to_string(i), 100 + i, "{\"n\": " +
                                                    std::to_string(i) + "}");
  }
  EXPECT_EQ(log.total_recorded(), 5);
  const std::vector<obs::SlowQueryLog::Entry> entries = log.Dump();
  ASSERT_EQ(entries.size(), 3u);  // q0/q1 evicted
  EXPECT_EQ(entries[0].name, "q2");
  EXPECT_EQ(entries[0].sequence, 2);
  EXPECT_EQ(entries[2].name, "q4");
  EXPECT_EQ(entries[2].latency_ns, 104);
  EXPECT_EQ(entries[2].trace_json, "{\"n\": 4}");
}

TEST(SlowQueryLogTest, JsonEmbedsTraceDocuments) {
  obs::SlowQueryLog log(/*capacity=*/4);
  log.Record("twoway", 2048, "{\"name\": \"query.twoway\"}");
  log.Record("nway", 4096, std::string());  // empty trace renders as {}
  EXPECT_EQ(log.ToJson(),
            "{\"total_recorded\": 2, \"slow_queries\": ["
            "{\"name\": \"twoway\", \"sequence\": 0, \"latency_ns\": 2048, "
            "\"trace\": {\"name\": \"query.twoway\"}}, "
            "{\"name\": \"nway\", \"sequence\": 1, \"latency_ns\": 4096, "
            "\"trace\": {}}]}");
}

// ------------------------------------------------------ pool metrics

TEST(ThreadPoolMetricsTest, TaskAndQueueHistogramsFillUnderFakeClock) {
  obs::MetricsRegistry registry;
  obs::FakeClock clock;
  ThreadPool pool(1);  // run-inline: deterministic counts
  pool.EnableMetrics(&registry, &clock, "test.pool");

  pool.ParallelFor(4, [](int64_t) {});
  pool.ParallelFor(0, [](int64_t) {});  // empty dispatch: no barrier

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("test.pool.barriers")->value, 1);
  EXPECT_EQ(pool.scheduler_barriers(), 1);  // same counter, re-homed
  EXPECT_EQ(snap.FindCounter("test.pool.tasks")->value, 0);  // ran inline
  EXPECT_EQ(snap.FindCounter("test.pool.workers_spawned")->value, 0);
  if (obs::kEnabled) {
    // Submit() is the timed path; inline single-task ParallelFor skips
    // it by design.
    pool.Submit([] {});
    const obs::MetricsSnapshot after = registry.Snapshot();
    EXPECT_EQ(after.FindCounter("test.pool.tasks")->value, 1);
    EXPECT_EQ(after.FindCounter("test.pool.tasks_inline")->value, 1);
    EXPECT_EQ(after.FindHistogram("test.pool.queue_wait_ns")->count, 1);
    EXPECT_EQ(after.FindHistogram("test.pool.task_ns")->count, 1);
  }
}

// ------------------------------------------------------- cluster tier

TEST(ClusterMetricsTest, EveryCounterIsRegisteredEagerlyAtZero) {
  obs::MetricsRegistry registry;
  dhtjoin::cluster::ClusterMetrics metrics(registry);
  (void)metrics;
  const obs::MetricsSnapshot snap = registry.Snapshot();
  // A dashboard can only alert on series that exist BEFORE the first
  // fault — every cluster counter must appear in a fresh snapshot.
  const char* names[] = {
      "cluster.rpc.attempts",        "cluster.rpc.ok",
      "cluster.rpc.transport_errors", "cluster.rpc.retries",
      "cluster.rpc.resource_exhausted", "cluster.hedge.fired",
      "cluster.hedge.won",           "cluster.failover.worker",
      "cluster.failover.local",      "cluster.heartbeat.probes",
      "cluster.heartbeat.misses",    "cluster.frame.checksum_rejects",
      "cluster.backoff.sleeps",      "cluster.backoff.micros",
      "cluster.worker.respawns",
  };
  for (const char* name : names) {
    const obs::CounterSnapshot* c = snap.FindCounter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->value, 0) << name;
  }
  ASSERT_NE(snap.FindHistogram("cluster.rpc.latency_ns"), nullptr);
  EXPECT_EQ(snap.FindHistogram("cluster.rpc.latency_ns")->count, 0);
}

TEST(ClusterMetricsTest, ValuesExportExactlyInJsonAndPrometheus) {
  obs::MetricsRegistry registry;
  dhtjoin::cluster::ClusterMetrics metrics(registry);
  metrics.rpc_attempts->Add(7);
  metrics.hedge_fired->Increment();
  metrics.failover_local->Add(2);
  metrics.backoff_micros->Add(12500);
  metrics.rpc_latency_ns->Record(4096);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("cluster.rpc.attempts")->value, 7);
  EXPECT_EQ(snap.FindCounter("cluster.hedge.fired")->value, 1);
  EXPECT_EQ(snap.FindCounter("cluster.failover.local")->value, 2);
  EXPECT_EQ(snap.FindCounter("cluster.backoff.micros")->value, 12500);
  EXPECT_EQ(snap.FindHistogram("cluster.rpc.latency_ns")->count, 1);

  const std::string json = obs::ToJson(snap);
  EXPECT_NE(json.find("\"cluster.rpc.attempts\": 7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cluster.failover.local\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cluster.rpc.latency_ns.count\": 1"),
            std::string::npos);

  const std::string prom = obs::ToPrometheusText(snap);
  EXPECT_NE(prom.find("# TYPE dhtjoin_cluster_rpc_attempts counter\n"
                      "dhtjoin_cluster_rpc_attempts 7\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dhtjoin_cluster_hedge_fired 1\n"), std::string::npos);
  EXPECT_NE(prom.find("dhtjoin_cluster_rpc_latency_ns_count 1\n"),
            std::string::npos);
}

// ------------------------------------------------------ persist tier

TEST(PersistMetricsTest, EveryCounterIsRegisteredEagerlyAtZero) {
  obs::MetricsRegistry registry;
  dhtjoin::persist::PersistMetrics metrics(registry);
  (void)metrics;
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const char* names[] = {
      "persist.checkpoint.writes", "persist.checkpoint.failures",
      "persist.checkpoint.bytes",  "persist.restore.hits",
      "persist.restore.rejects",
  };
  for (const char* name : names) {
    const obs::CounterSnapshot* c = snap.FindCounter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->value, 0) << name;
  }
}

TEST(PersistMetricsTest, ValuesExportExactlyInJsonAndPrometheus) {
  obs::MetricsRegistry registry;
  dhtjoin::persist::PersistMetrics metrics(registry);
  metrics.checkpoint_writes->Add(3);
  metrics.checkpoint_bytes->Add(65536);
  metrics.restore_hits->Add(41);
  metrics.restore_rejects->Increment();

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("persist.checkpoint.writes")->value, 3);
  EXPECT_EQ(snap.FindCounter("persist.checkpoint.bytes")->value, 65536);
  EXPECT_EQ(snap.FindCounter("persist.restore.hits")->value, 41);
  EXPECT_EQ(snap.FindCounter("persist.restore.rejects")->value, 1);
  EXPECT_EQ(snap.FindCounter("persist.checkpoint.failures")->value, 0);

  const std::string json = obs::ToJson(snap);
  EXPECT_NE(json.find("\"persist.checkpoint.writes\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"persist.checkpoint.bytes\": 65536"),
            std::string::npos);
  EXPECT_NE(json.find("\"persist.restore.hits\": 41"), std::string::npos);

  const std::string prom = obs::ToPrometheusText(snap);
  EXPECT_NE(prom.find("# TYPE dhtjoin_persist_checkpoint_writes counter\n"
                      "dhtjoin_persist_checkpoint_writes 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dhtjoin_persist_restore_rejects 1\n"),
            std::string::npos);
}

TEST(ThreadPoolMetricsTest, ConcurrentPoolRecordsEveryTask) {
  obs::MetricsRegistry registry;
  obs::FakeClock clock;
  {
    ThreadPool pool(4);
    pool.EnableMetrics(&registry, &clock, "mt.pool");
    pool.ParallelFor(64, [](int64_t) {});
    pool.Wait();
  }  // join workers so the snapshot below is quiesced and exact
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("mt.pool.tasks")->value, 64);
  EXPECT_EQ(snap.FindCounter("mt.pool.barriers")->value, 1);
  if (obs::kEnabled) {
    EXPECT_EQ(snap.FindHistogram("mt.pool.queue_wait_ns")->count, 64);
    EXPECT_EQ(snap.FindHistogram("mt.pool.task_ns")->count, 64);
  }
}

}  // namespace
}  // namespace dhtjoin
