/// \file tests/robustness_test.cc
/// \brief Query-lifecycle robustness: deadlines, cooperative
/// cancellation, anytime ε-bounded degradation, admission control, and
/// the deterministic fault-injection harness (DESIGN.md §9).
///
/// The load-bearing claims under test:
///  * a degraded answer is DETERMINISTIC: the same query cut at the
///    same deepening level is bit-identical across the resume and
///    restart schedules, across physical graph layouts, and between
///    the cold serving executor and the plain engine;
///  * every reported eps_bound is VALID: each degraded score s
///    satisfies s <= h_d <= s + eps_bound against the unbounded run;
///  * faults never corrupt: injected commit failures change step
///    counts, never results; worker-task exceptions surface as
///    Status{kInternal} and leave the pool serving.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dht/backward.h"
#include "graph/reorder.h"
#include "join2/b_idj.h"
#include "join2/f_idj.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "testing/reference.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dhtjoin {
namespace {

using serve::DhtJoinService;
using serve::QueryOptions;
using serve::QueryStats;
using serve::ServiceStats;
using testing::RandomGraph;
using testing::Range;
using testing::TwoCommunityGraph;

// ------------------------------------------------------ status codes

TEST(RobustnessStatusTest, NewCodesRoundTrip) {
  EXPECT_STREQ("DeadlineExceeded",
               StatusCodeToString(StatusCode::kDeadlineExceeded));
  EXPECT_STREQ("Cancelled", StatusCodeToString(StatusCode::kCancelled));
  EXPECT_STREQ("ResourceExhausted",
               StatusCodeToString(StatusCode::kResourceExhausted));
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

// ------------------------------------------------- deadline/context

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.RemainingSeconds() > 1e18);
}

TEST(DeadlineTest, PastDeadlineExpired) {
  Deadline d = Deadline::At(Deadline::Clock::now() -
                            std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_LT(d.RemainingSeconds(), 0.0);
  EXPECT_FALSE(Deadline::AfterSeconds(60.0).Expired());
}

TEST(ExecContextTest, CancelIsStickyAndHard) {
  ExecContext ctx;
  ctx.token = std::make_shared<CancelToken>();
  EXPECT_EQ(ctx.Check(), StatusCode::kOk);
  ctx.token->Cancel();
  EXPECT_EQ(ctx.Check(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.stop_code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.stopped());
  // Sticky: the first verdict wins even at later block checks.
  EXPECT_EQ(ctx.CheckBlockGroup(), StatusCode::kCancelled);
}

TEST(ExecContextTest, EffortBudgetIsDeterministic) {
  ExecContext ctx;
  ctx.effort_budget_blocks = 3;
  EXPECT_EQ(ctx.CheckBlockGroup(), StatusCode::kOk);
  EXPECT_EQ(ctx.CheckBlockGroup(), StatusCode::kOk);
  EXPECT_EQ(ctx.CheckBlockGroup(), StatusCode::kOk);
  EXPECT_EQ(ctx.CheckBlockGroup(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.blocks_checked(), 4);
  // Executor-level polls see the sticky soft stop.
  EXPECT_EQ(ctx.Check(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, SoftStopRequestDegradesNotCancels) {
  ExecContext ctx;
  ctx.RequestSoftStop();
  EXPECT_EQ(ctx.Check(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------------- thread pool

TEST(ThreadPoolRobustnessTest, ParallelForRethrowsAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int64_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still work: a failed ParallelFor may not leak
  // pending counts or wedge workers.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

// --------------------------------------------- degraded determinism

std::vector<ScoredPair> RunCutAt(const Graph& g, const DhtParams& params,
                                 int d, const NodeSet& P, const NodeSet& Q,
                                 std::size_t k, int cut_after_level,
                                 bool resume, TwoWayJoinStats* stats = nullptr,
                                 UpperBoundKind bound = UpperBoundKind::kY) {
  ExecContext exec;
  exec.on_level = [&exec, cut_after_level](int level) {
    if (level >= cut_after_level) exec.RequestSoftStop();
  };
  BIdjJoin join(BIdjJoin::Options{.bound = bound, .resume = resume,
                                  .exec = &exec});
  auto result = join.Run(g, params, d, P, Q, k);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(join.stats().partial.degraded);
  EXPECT_EQ(join.stats().partial.level_reached, cut_after_level);
  if (stats != nullptr) *stats = join.stats();
  return std::move(result).value();
}

TEST(DegradedAnswerTest, BitIdenticalAcrossSchedulesAndLayouts) {
  Graph g = RandomGraph(120, 480, 11);
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 40);
  NodeSet Q = Range("Q", 40, 100);

  for (int cut : {1, 2, 4}) {
    std::vector<ScoredPair> base =
        RunCutAt(g, params, d, P, Q, 12, cut, /*resume=*/true);
    std::vector<ScoredPair> restart =
        RunCutAt(g, params, d, P, Q, 12, cut, /*resume=*/false);
    ASSERT_EQ(base.size(), restart.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].p, restart[i].p);
      EXPECT_EQ(base[i].q, restart[i].q);
      EXPECT_EQ(base[i].score, restart[i].score);  // bit-identical
    }
    for (ReorderKind kind : {ReorderKind::kDegree, ReorderKind::kRcm}) {
      auto rg = ReorderGraph(g, kind);
      ASSERT_TRUE(rg.ok());
      std::vector<ScoredPair> relaid =
          RunCutAt(*rg, params, d, P, Q, 12, cut, /*resume=*/true);
      ASSERT_EQ(base.size(), relaid.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].p, relaid[i].p);
        EXPECT_EQ(base[i].q, relaid[i].q);
        EXPECT_EQ(base[i].score, relaid[i].score);
      }
    }
  }
}

TEST(DegradedAnswerTest, ColdServiceMatchesEngineAtSameCut) {
  Graph g = RandomGraph(100, 380, 23);
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 30);
  NodeSet Q = Range("Q", 30, 90);
  const int cut = 2;

  std::vector<ScoredPair> engine =
      RunCutAt(g, params, d, P, Q, 10, cut, /*resume=*/true);

  // cache_budget_bytes = 0 (explicit) disables retention: the service
  // runs the query cold, so its degraded answer at the same forced cut
  // must be bit-identical to the engine's (warm resumes score rows at
  // DEEPER levels — still ε-valid, but not comparable bit-for-bit).
  DhtJoinService::Options sopts;
  sopts.cache_budget_bytes = 0;
  sopts.num_threads = 1;
  DhtJoinService service(g, params, d, sopts);
  ExecContext exec;
  exec.on_level = [&exec](int level) {
    if (level >= 2) exec.RequestSoftStop();
  };
  QueryStats qs;
  auto result = service.TwoWay(P, Q, 10, &qs, &exec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(qs.join.partial.degraded);
  EXPECT_EQ(qs.join.partial.level_reached, cut);
  ASSERT_EQ(engine.size(), result->size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    EXPECT_EQ(engine[i].p, (*result)[i].p);
    EXPECT_EQ(engine[i].q, (*result)[i].q);
    EXPECT_EQ(engine[i].score, (*result)[i].score);
  }
  EXPECT_EQ(service.service_stats().degraded, 1);
}

// ----------------------------------------------------- eps validity

void CheckEpsBounds(const Graph& g, const DhtParams& params, int d,
                    const std::vector<ScoredPair>& degraded,
                    double eps_bound) {
  ASSERT_GE(eps_bound, 0.0);
  BackwardWalker walker(g);
  for (const ScoredPair& sp : degraded) {
    walker.Reset(params, ExtNodeId(sp.q));
    walker.Advance(d);
    const double exact = walker.Score(ExtNodeId(sp.p));
    EXPECT_LE(sp.score, exact + 1e-12)
        << "pair (" << sp.p << ", " << sp.q << ")";
    EXPECT_LE(exact, sp.score + eps_bound + 1e-12)
        << "pair (" << sp.p << ", " << sp.q << ")";
  }
}

TEST(EpsBoundTest, DegradedScoresBracketExactOverRandomGraphs) {
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  for (uint64_t seed : {3u, 9u, 41u}) {
    Graph g = RandomGraph(80, 300, seed);
    NodeSet P = Range("P", 0, 25);
    NodeSet Q = Range("Q", 25, 75);
    for (int cut : {1, 2, 4}) {
      for (UpperBoundKind bound :
           {UpperBoundKind::kY, UpperBoundKind::kX}) {
        TwoWayJoinStats st;
        std::vector<ScoredPair> degraded =
            RunCutAt(g, params, d, P, Q, 15, cut, /*resume=*/true, &st,
                     bound);
        CheckEpsBounds(g, params, d, degraded, st.partial.eps_bound);
      }
    }
  }
}

TEST(EpsBoundTest, EffortBudgetDegradeIsValidAndReproducible) {
  Graph g = RandomGraph(90, 360, 5);
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 30);
  NodeSet Q = Range("Q", 30, 80);

  auto run = [&]() {
    ExecContext exec;
    exec.effort_budget_blocks = 10;  // trips after the early rounds
    BIdjJoin join(BIdjJoin::Options{.exec = &exec});
    auto result = join.Run(g, params, d, P, Q, 10);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(join.stats().partial.degraded);
    EXPECT_GT(join.stats().lifecycle_checks, 0);
    CheckEpsBounds(g, params, d, *result, join.stats().partial.eps_bound);
    return std::make_pair(std::move(result).value(), join.stats().partial);
  };
  auto [a, pa] = run();
  auto [b, pb] = run();
  // The effort counter advances identically at round boundaries, so
  // the cut — and therefore the whole degraded answer — reproduces.
  EXPECT_EQ(pa.level_reached, pb.level_reached);
  EXPECT_EQ(pa.eps_bound, pb.eps_bound);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

TEST(EpsBoundTest, FIdjDegradesWithValidXBound) {
  Graph g = TwoCommunityGraph();
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 5);
  NodeSet Q = Range("Q", 5, 10);

  ExecContext exec;
  exec.on_level = [&exec](int level) {
    if (level >= 2) exec.RequestSoftStop();
  };
  FIdjJoin join(FIdjJoin::Options{.exec = &exec});
  auto result = join.Run(g, params, d, P, Q, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(join.stats().partial.degraded);
  EXPECT_EQ(join.stats().partial.level_reached, 2);
  EXPECT_EQ(join.stats().partial.eps_bound, params.XBound(2));
  CheckEpsBounds(g, params, d, *result, join.stats().partial.eps_bound);
}

TEST(EpsBoundTest, FullRunReportsNoDegradation) {
  Graph g = TwoCommunityGraph();
  DhtParams params = DhtParams::Lambda(0.2);
  ExecContext exec;  // infinite deadline, no faults
  BIdjJoin join(BIdjJoin::Options{.exec = &exec});
  auto result = join.Run(g, params, 8, Range("P", 0, 5), Range("Q", 5, 10), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(join.stats().partial.degraded);
  EXPECT_EQ(join.stats().partial.level_reached, 8);
  EXPECT_EQ(join.stats().partial.eps_bound, 0.0);
}

// ------------------------------------------------------ cancellation

TEST(CancellationTest, PreCancelledQueryReturnsCancelled) {
  Graph g = TwoCommunityGraph();
  DhtParams params = DhtParams::Lambda(0.2);
  ExecContext exec;
  exec.token = std::make_shared<CancelToken>();
  exec.token->Cancel();
  BIdjJoin join(BIdjJoin::Options{.exec = &exec});
  auto result = join.Run(g, params, 8, Range("P", 0, 5), Range("Q", 5, 10), 5);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, MidRunCancelViaFaultPlanStopsQuery) {
  Graph g = RandomGraph(120, 480, 77);
  DhtParams params = DhtParams::Lambda(0.2);
  ExecContext exec;
  FaultInjector injector(FaultPlan{.cancel_at_check = 2});
  injector.Arm(exec);
  ASSERT_NE(exec.token, nullptr);  // Arm creates the token
  BIdjJoin join(BIdjJoin::Options{.exec = &exec});
  auto result =
      join.Run(g, params, 8, Range("P", 0, 40), Range("Q", 40, 110), 10);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(injector.cancels_fired(), 1);
}

TEST(CancellationTest, ServiceCountsCancelled) {
  Graph g = TwoCommunityGraph();
  DhtParams params = DhtParams::Lambda(0.2);
  DhtJoinService service(g, params, 8);
  ExecContext exec;
  exec.token = std::make_shared<CancelToken>();
  exec.token->Cancel();
  auto result = service.TwoWay(Range("P", 0, 5), Range("Q", 5, 10), 5,
                               nullptr, &exec);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.service_stats().cancelled, 1);
}

// -------------------------------------------------- fault injection

TEST(FaultInjectionTest, CommitFaultDrawsAreDeterministic) {
  FaultInjector a(FaultPlan{.commit_fail_rate = 0.3, .seed = 99});
  FaultInjector b(FaultPlan{.commit_fail_rate = 0.3, .seed = 99});
  int fails = 0;
  for (uint64_t n = 1; n <= 2000; ++n) {
    EXPECT_EQ(a.ShouldFailCommit(n), b.ShouldFailCommit(n));
    fails += a.ShouldFailCommit(n) ? 1 : 0;
  }
  // Roughly Bernoulli(0.3): wide tolerance, deterministic anyway.
  EXPECT_GT(fails, 2000 * 0.2);
  EXPECT_LT(fails, 2000 * 0.4);
  FaultInjector never(FaultPlan{.commit_fail_rate = 0.0, .seed = 99});
  FaultInjector always(FaultPlan{.commit_fail_rate = 1.0, .seed = 99});
  for (uint64_t n = 1; n <= 50; ++n) {
    EXPECT_FALSE(never.ShouldFailCommit(n));
    EXPECT_TRUE(always.ShouldFailCommit(n));
  }
}

TEST(FaultInjectionTest, CommitFaultsForceEvictionsNotWrongAnswers) {
  Graph g = RandomGraph(100, 400, 31);
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 30);
  NodeSet Q = Range("Q", 30, 90);

  BIdjJoin clean;
  auto want = clean.Run(g, params, d, P, Q, 10);
  ASSERT_TRUE(want.ok());

  ExecContext exec;
  FaultInjector injector(FaultPlan{.commit_fail_rate = 0.5, .seed = 7});
  injector.Arm(exec);
  BIdjJoin faulty(BIdjJoin::Options{.exec = &exec});
  auto got = faulty.Run(g, params, d, P, Q, 10);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(faulty.stats().partial.degraded);

  EXPECT_GT(injector.commit_faults_fired(), 0);
  EXPECT_GE(faulty.stats().state_evictions, injector.commit_faults_fired());
  ASSERT_EQ(want->size(), got->size());
  for (std::size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*want)[i].p, (*got)[i].p);
    EXPECT_EQ((*want)[i].q, (*got)[i].q);
    EXPECT_EQ((*want)[i].score, (*got)[i].score);  // bit-identical
  }
}

TEST(FaultInjectionTest, InjectedDelayFires) {
  Graph g = RandomGraph(80, 300, 13);
  DhtParams params = DhtParams::Lambda(0.2);
  ExecContext exec;
  FaultInjector injector(
      FaultPlan{.delay_at_check = 1, .delay_micros = 100});
  injector.Arm(exec);
  BIdjJoin join(BIdjJoin::Options{.exec = &exec});
  auto result =
      join.Run(g, params, 8, Range("P", 0, 20), Range("Q", 20, 70), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(injector.delays_fired(), 1);
  EXPECT_FALSE(join.stats().partial.degraded);
}

// ------------------------------------------ exception containment

TEST(ExceptionContainmentTest, WorkerThrowSurfacesAsInternal) {
  Graph g = RandomGraph(100, 400, 19);
  DhtParams params = DhtParams::Lambda(0.2);
  DhtJoinService::Options sopts;
  sopts.num_threads = 2;
  DhtJoinService service(g, params, 8, sopts);

  QueryOptions qopts;
  qopts.exec = std::make_shared<ExecContext>();
  FaultInjector injector(FaultPlan{.throw_at_check = 1});
  injector.Arm(*qopts.exec);

  auto future = service.SubmitTwoWay(Range("P", 0, 30), Range("Q", 30, 90),
                                     10, std::move(qopts));
  auto result = future.get();
  EXPECT_EQ(result.status().code(), StatusCode::kInternal)
      << result.status().ToString();
  EXPECT_EQ(injector.throws_fired(), 1);
  EXPECT_EQ(service.service_stats().exceptions, 1);

  // Regression: the pool must keep serving after a contained throw
  // (historically the escaped exception terminated a worker).
  auto ok = service.SubmitTwoWay(Range("P", 0, 30), Range("Q", 30, 90), 10)
                .get();
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// --------------------------------------------------------- admission

TEST(AdmissionTest, InFlightCapRejectsWithRetryAfter) {
  AdmissionController ctl(AdmissionOptions{.max_in_flight = 2});
  EXPECT_TRUE(ctl.Admit(0).ok());
  EXPECT_TRUE(ctl.Admit(0).ok());
  Status third = ctl.Admit(0);
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("retry_after_micros="), std::string::npos);
  EXPECT_EQ(ctl.in_flight(), 2);
  ctl.Finish(1000);
  EXPECT_TRUE(ctl.Admit(0).ok());
  AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed_capacity, 1);
  EXPECT_GE(ctl.RetryAfterMicros(), 1000);
}

TEST(AdmissionTest, CostGateShedsExpensiveQueries) {
  AdmissionController ctl(AdmissionOptions{.max_estimated_cost = 100});
  EXPECT_TRUE(ctl.Admit(100).ok());
  Status shed = ctl.Admit(101);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.stats().shed_cost, 1);
  // The cost gate does not consume in-flight slots on rejection.
  EXPECT_EQ(ctl.in_flight(), 1);
}

TEST(AdmissionTest, CostEstimateIsDeterministicAndScales) {
  Graph g = RandomGraph(200, 1000, 3);
  NodeSet small = Range("S", 0, 10);
  NodeSet big = Range("B", 0, 150);
  int64_t a = EstimateTwoWayCost(g, small, big, 8, 16);
  int64_t b = EstimateTwoWayCost(g, small, big, 8, 16);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
  // More targets and more depth mean more estimated work.
  EXPECT_LT(EstimateTwoWayCost(g, small, small, 8, 16), a);
  EXPECT_LT(EstimateTwoWayCost(g, small, big, 4, 16), a);
  EXPECT_EQ(EstimateTwoWayCost(g, small, NodeSet("E", std::vector<NodeId>{}),
                               8, 16),
            0);
}

TEST(AdmissionTest, ServiceShedsOverCapacitySubmits) {
  Graph g = RandomGraph(150, 700, 29);
  DhtParams params = DhtParams::Lambda(0.2);
  DhtJoinService::Options sopts;
  sopts.num_threads = 2;
  sopts.admission.max_in_flight = 1;
  DhtJoinService service(g, params, 8, sopts);

  NodeSet P = Range("P", 0, 40);
  NodeSet Q = Range("Q", 40, 140);
  std::vector<std::future<Result<std::vector<ScoredPair>>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.SubmitTwoWay(P, Q, 10));
  }
  int64_t ok = 0, shed = 0;
  for (auto& f : futures) {
    Status s = f.get().status();
    if (s.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);  // at least the first admitted query completes
  EXPECT_EQ(ok + shed, 8);
  ServiceStats ss = service.service_stats();
  EXPECT_EQ(ss.admission.admitted, ok);
  EXPECT_EQ(ss.admission.shed_capacity, shed);
}

TEST(AdmissionTest, ExpiredWhileQueuedIsShedAndDegradesAtLevelZero) {
  Graph g = RandomGraph(100, 400, 59);
  DhtParams params = DhtParams::Lambda(0.2);
  DhtJoinService::Options sopts;
  sopts.num_threads = 2;
  DhtJoinService service(g, params, 8, sopts);

  QueryOptions qopts;
  qopts.exec = std::make_shared<ExecContext>();
  qopts.exec->deadline =
      Deadline::At(Deadline::Clock::now() - std::chrono::seconds(1));
  QueryStats qs;
  qopts.stats = &qs;
  auto result = service.SubmitTwoWay(Range("P", 0, 30), Range("Q", 30, 90),
                                     10, std::move(qopts))
                    .get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(qs.join.partial.degraded);
  EXPECT_EQ(qs.join.partial.level_reached, 0);
  EXPECT_GT(qs.join.partial.eps_bound, 0.0);
  EXPECT_TRUE(result->empty());  // nothing computed at level 0
  ServiceStats ss = service.service_stats();
  EXPECT_EQ(ss.admission.shed_expired, 1);
  EXPECT_EQ(ss.degraded, 1);
  EXPECT_EQ(ss.deadline_exceeded, 1);
}

TEST(AdmissionTest, DegradedRunNeverPoisonsTheCache) {
  Graph g = RandomGraph(100, 400, 67);
  DhtParams params = DhtParams::Lambda(0.2);
  const int d = 8;
  NodeSet P = Range("P", 0, 30);
  NodeSet Q = Range("Q", 30, 90);
  DhtJoinService::Options sopts;
  sopts.num_threads = 1;
  DhtJoinService service(g, params, d, sopts);

  // First query dies instantly: incomplete Y sweep, level-0 cut.
  ExecContext dead;
  dead.deadline = Deadline::At(Deadline::Clock::now() -
                               std::chrono::seconds(1));
  QueryStats qs;
  auto degraded = service.TwoWay(P, Q, 10, &qs, &dead);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(qs.join.partial.degraded);

  // Second, unbounded run of the SAME query must produce the full
  // answer — i.e. the aborted sweep was not cached as if complete.
  auto warm = service.TwoWay(P, Q, 10);
  ASSERT_TRUE(warm.ok());
  BIdjJoin reference;
  auto want = reference.Run(g, params, d, P, Q, 10);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(want->size(), warm->size());
  for (std::size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*want)[i].p, (*warm)[i].p);
    EXPECT_EQ((*want)[i].q, (*warm)[i].q);
    EXPECT_EQ((*want)[i].score, (*warm)[i].score);
  }
}

}  // namespace
}  // namespace dhtjoin
