/// \file tests/cluster_test.cc
/// \brief Fault-tolerant serving tier (cluster/*): framing, wire
/// codecs, backoff, chaos schedules, and the coordinator/worker loop.
///
/// The load-bearing claim (DESIGN.md §12): every admitted query
/// returns either an answer BYTE-IDENTICAL to single-process
/// DhtJoinService execution or a typed Status — across worker kills at
/// every span boundary (import, deepening round, write-back), corrupt
/// and truncated reply frames, admission rejection storms, dead
/// endpoints, straggler hedging, and local fallback. Workers here run
/// in-process (threads, not forks) so the whole matrix is
/// TSan-checkable; bench_cluster covers the real fork/SIGKILL axis.

#include <dirent.h>
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/coordinator.h"
#include "cluster/frame.h"
#include "cluster/supervisor.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "cluster/worker.h"
#include "obs/clock.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "testing/reference.h"
#include "util/backoff.h"

// Fork-based tests (SpawnWorkerProcess, WorkerSupervisor) are skipped
// under TSan: fork() in an instrumented multi-threaded test binary
// trips the runtime's own locks, and the respawn machinery is already
// covered by the uninstrumented jobs.
#if defined(__SANITIZE_THREAD__)
#define DHTJOIN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DHTJOIN_TSAN_BUILD 1
#endif
#endif

namespace dhtjoin {
namespace {

using cluster::ChaosOptions;
using cluster::ClusterCoordinator;
using cluster::ClusterQueryStats;
using cluster::CoordinatorOptions;
using cluster::DecodeFrameHeader;
using cluster::DecodeTwoWayReply;
using cluster::DecodeTwoWayRequest;
using cluster::DrawWorkerFault;
using cluster::EncodeFrame;
using cluster::EncodeTwoWayReply;
using cluster::EncodeTwoWayRequest;
using cluster::FrameHeader;
using cluster::FrameType;
using cluster::kFrameHeaderBytes;
using cluster::ParamsFingerprint;
using cluster::TwoWayWireReply;
using cluster::TwoWayWireRequest;
using cluster::VerifyFramePayload;
using cluster::WorkerEndpoint;
using cluster::WorkerFault;
using cluster::WorkerFaultKind;
using cluster::WorkerOptions;
using cluster::WorkerServer;
using serve::DhtJoinService;
using testing::RandomGraph;
using testing::Range;

/// Byte identity, the invariant of the whole tier: same pairs in the
/// same order with the same IEEE-754 bit patterns.
void ExpectBytesIdentical(const std::vector<ScoredPair>& got,
                          const std::vector<ScoredPair>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].p, want[i].p) << "pair " << i;
    EXPECT_EQ(got[i].q, want[i].q) << "pair " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].score),
              std::bit_cast<uint64_t>(want[i].score))
        << "pair " << i;
  }
}

// ------------------------------------------------------------ framing

TEST(FrameTest, RoundTrip) {
  std::vector<uint8_t> payload;
  for (int i = 0; i < 100; ++i) payload.push_back(static_cast<uint8_t>(i));
  std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kTwoWay, 42, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  Result<FrameHeader> header = DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, static_cast<uint16_t>(FrameType::kTwoWay));
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->payload_len, payload.size());
  EXPECT_TRUE(VerifyFramePayload(*header,
                                 std::span<const uint8_t>(
                                     frame.data() + kFrameHeaderBytes,
                                     payload.size()))
                  .ok());
}

TEST(FrameTest, ChecksumCatchesEverySingleByteFlip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<uint8_t> frame = EncodeFrame(FrameType::kTwoWayReply, 7,
                                           payload);
  Result<FrameHeader> header = DecodeFrameHeader(
      std::span<const uint8_t>(frame.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = payload;
      mutated[i] = static_cast<uint8_t>(mutated[i] ^ (1u << bit));
      Status verdict = VerifyFramePayload(
          *header, std::span<const uint8_t>(mutated.data(), mutated.size()));
      EXPECT_FALSE(verdict.ok()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(FrameTest, DecodeRejectsBadMagicAndShortLength) {
  std::vector<uint8_t> frame = EncodeFrame(FrameType::kPing, 1, {});
  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xff;  // magic is little-endian first
  EXPECT_FALSE(DecodeFrameHeader(
                   std::span<const uint8_t>(bad.data(), kFrameHeaderBytes))
                   .ok());
  EXPECT_FALSE(DecodeFrameHeader(
                   std::span<const uint8_t>(frame.data(),
                                            kFrameHeaderBytes - 1))
                   .ok());
}

TEST(ChaosTest, CorruptFramePayloadFlipsExactlyOneByteAndIsCaught) {
  std::vector<uint8_t> payload(64, 0xab);
  std::vector<uint8_t> frame = EncodeFrame(FrameType::kTwoWayReply, 9,
                                           payload);
  std::vector<uint8_t> corrupted = frame;
  cluster::CorruptFramePayload(corrupted, 1234);
  int diff = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (frame[i] != corrupted[i]) ++diff;
  }
  EXPECT_EQ(diff, 1);
  Result<FrameHeader> header = DecodeFrameHeader(
      std::span<const uint8_t>(corrupted.data(), kFrameHeaderBytes));
  ASSERT_TRUE(header.ok());  // header intact: the checksum must catch it
  EXPECT_FALSE(VerifyFramePayload(
                   *header,
                   std::span<const uint8_t>(
                       corrupted.data() + kFrameHeaderBytes,
                       corrupted.size() - kFrameHeaderBytes))
                   .ok());
}

TEST(ChaosTest, TruncateFrameIsStrictPrefix) {
  std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kTwoWayReply, 3, std::vector<uint8_t>(32, 1));
  std::vector<uint8_t> truncated = frame;
  cluster::TruncateFrame(truncated, 77);
  ASSERT_LT(truncated.size(), frame.size());
  ASSERT_GE(truncated.size(), 1u);
  EXPECT_TRUE(std::equal(truncated.begin(), truncated.end(), frame.begin()));
}

TEST(ChaosTest, FaultScheduleIsDeterministicInSeedAndOrdinal) {
  ChaosOptions opts;
  opts.seed = 99;
  opts.p_kill_before_execute = 0.2;
  opts.p_corrupt_reply = 0.2;
  opts.p_truncate_reply = 0.2;
  bool saw_fault = false;
  for (uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
    WorkerFault a = DrawWorkerFault(opts, ordinal);
    WorkerFault b = DrawWorkerFault(opts, ordinal);
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    if (a.kind != WorkerFaultKind::kNone) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault);
  // Seed 0 disables everything.
  EXPECT_EQ(static_cast<int>(DrawWorkerFault(ChaosOptions{}, 5).kind),
            static_cast<int>(WorkerFaultKind::kNone));
}

// --------------------------------------------------------------- wire

TEST(WireTest, RequestRoundTripIsExact) {
  TwoWayWireRequest req;
  req.graph_fp = 0x1234567890abcdefULL;
  req.params_fp = 0xfedcba0987654321ULL;
  req.p_ids = {1, 5, 9};
  req.q_ids = {2, 3};
  req.k = 17;
  req.deadline_micros = 250000;
  req.effort_blocks = 12;
  Result<TwoWayWireRequest> back =
      DecodeTwoWayRequest(EncodeTwoWayRequest(req));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->graph_fp, req.graph_fp);
  EXPECT_EQ(back->params_fp, req.params_fp);
  EXPECT_EQ(back->p_ids, req.p_ids);
  EXPECT_EQ(back->q_ids, req.q_ids);
  EXPECT_EQ(back->k, req.k);
  EXPECT_EQ(back->deadline_micros, req.deadline_micros);
  EXPECT_EQ(back->effort_blocks, req.effort_blocks);
}

TEST(WireTest, ReplyScoresCrossTheWireBitExactly) {
  TwoWayWireReply reply;
  reply.status_code = StatusCode::kOk;
  reply.degraded = true;
  reply.level_reached = 3;
  reply.eps_bound = 0.1;  // not exactly representable: the honest case
  reply.walk_steps = 12345;
  reply.warm_targets = 7;
  reply.cold_targets = 8;
  const double awkward[] = {0.1, 1e-300, 5e-324,
                            std::nextafter(1.0, 2.0), 0.7 * 0.3};
  NodeId id = 0;
  for (double s : awkward) {
    reply.pairs.push_back(ScoredPair{id, id + 1, s});
    id += 2;
  }
  Result<TwoWayWireReply> back = DecodeTwoWayReply(EncodeTwoWayReply(reply));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->status_code, reply.status_code);
  EXPECT_EQ(back->degraded, reply.degraded);
  EXPECT_EQ(back->level_reached, reply.level_reached);
  EXPECT_EQ(std::bit_cast<uint64_t>(back->eps_bound),
            std::bit_cast<uint64_t>(reply.eps_bound));
  EXPECT_EQ(back->walk_steps, reply.walk_steps);
  ExpectBytesIdentical(back->pairs, reply.pairs);
}

TEST(WireTest, DecodeRejectsTrailingBytes) {
  TwoWayWireRequest req;
  req.k = 1;
  std::vector<uint8_t> bytes = EncodeTwoWayRequest(req);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeTwoWayRequest(bytes).ok());
}

TEST(WireTest, ParamsFingerprintSeparatesConfigurations) {
  DhtParams a = DhtParams::Lambda(0.2);
  DhtParams b = DhtParams::Lambda(0.3);
  EXPECT_EQ(ParamsFingerprint(a, 6), ParamsFingerprint(a, 6));
  EXPECT_NE(ParamsFingerprint(a, 6), ParamsFingerprint(b, 6));
  EXPECT_NE(ParamsFingerprint(a, 6), ParamsFingerprint(a, 7));
}

// ------------------------------------------------------------ backoff

TEST(BackoffTest, ExponentialGrowthCapsAtMax) {
  BackoffOptions opts;
  opts.initial_micros = 1000;
  opts.max_micros = 5000;
  opts.multiplier = 2.0;
  opts.jitter = 0.0;  // deterministic schedule
  RetryBackoff backoff(opts);
  EXPECT_EQ(backoff.NextDelayMicros(), 1000);
  EXPECT_EQ(backoff.NextDelayMicros(), 2000);
  EXPECT_EQ(backoff.NextDelayMicros(), 4000);
  EXPECT_EQ(backoff.NextDelayMicros(), 5000);
  EXPECT_EQ(backoff.NextDelayMicros(), 5000);
  backoff.Reset();
  EXPECT_EQ(backoff.NextDelayMicros(), 1000);
  EXPECT_EQ(backoff.sleeps(), 6);
}

TEST(BackoffTest, RetryAfterHintIsAFloor) {
  BackoffOptions opts;
  opts.initial_micros = 1000;
  opts.max_micros = 100000;
  opts.jitter = 0.5;
  RetryBackoff backoff(opts);
  EXPECT_GE(backoff.NextDelayMicros(40000), 40000);
  // And jitter keeps an unhinted delay within [d * (1 - jitter), d].
  backoff.Reset();
  const int64_t first = backoff.NextDelayMicros();
  EXPECT_GE(first, 500);
  EXPECT_LE(first, 1000);
}

TEST(WorkloadTest, ParseRetryAfterMicrosExtractsTheHint) {
  EXPECT_EQ(serve::ParseRetryAfterMicros(
                "service overloaded: 4 queries in flight (cap 4); "
                "retry_after_micros=2500"),
            2500);
  EXPECT_EQ(serve::ParseRetryAfterMicros("no hint here"), 0);
  EXPECT_EQ(serve::ParseRetryAfterMicros(""), 0);
}

// ----------------------------------------------- end-to-end (threads)

/// Shared fixture: one graph + params, a reference single-process
/// service, and helpers to stand up in-process workers.
class ClusterE2ETest : public ::testing::Test {
 protected:
  ClusterE2ETest()
      : g_(RandomGraph(60, 200, 7)),
        params_(DhtParams::Lambda(0.2)),
        P_(Range("P", 0, 20)),
        Q_(Range("Q", 25, 55)),
        reference_(g_, params_, kD, ReferenceOptions()) {}

  static constexpr int kD = 6;
  static constexpr std::size_t kK = 15;

  static DhtJoinService::Options ReferenceOptions() {
    DhtJoinService::Options o;
    o.num_threads = 2;
    return o;
  }

  std::unique_ptr<WorkerServer> StartWorker(ChaosOptions chaos = {}) {
    WorkerOptions wo;
    wo.service.num_threads = 2;
    wo.chaos = chaos;
    auto w = std::make_unique<WorkerServer>(g_, params_, kD, wo);
    Status st = w->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return w;
  }

  CoordinatorOptions BaseOptions() {
    CoordinatorOptions o;
    o.hedge.enabled = false;  // tests opt in explicitly
    o.retry.backoff.initial_micros = 200;
    o.retry.backoff.max_micros = 2000;
    o.local_service.num_threads = 2;
    return o;
  }

  std::vector<ScoredPair> Reference(const ExecContext* exec = nullptr) {
    Result<std::vector<ScoredPair>> r =
        reference_.TwoWay(P_, Q_, kK, nullptr, exec);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Graph g_;
  DhtParams params_;
  NodeSet P_;
  NodeSet Q_;
  DhtJoinService reference_;
};

TEST_F(ClusterE2ETest, SingleWorkerAnswersByteIdentically) {
  auto worker = StartWorker();
  ClusterCoordinator coord(g_, params_, kD, {WorkerEndpoint{worker->port()}},
                           BaseOptions());
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, Reference());
  EXPECT_EQ(stats.worker_index, 0);
  EXPECT_FALSE(stats.local_fallback);
  EXPECT_EQ(stats.attempts, 1);
  worker->Stop();
}

TEST_F(ClusterE2ETest, FailoverIsByteIdenticalAtEverySpanBoundary) {
  // One chaos-armed worker that kills EVERY request at the given
  // boundary, one clean worker: whatever the routing order, every
  // query must come back byte-identical via retry/failover.
  const std::vector<ScoredPair> want = Reference();
  struct Case {
    const char* name;
    ChaosOptions chaos;
  };
  std::vector<Case> cases;
  {
    Case c{"kill_before_execute", {}};
    c.chaos.seed = 11;
    c.chaos.p_kill_before_execute = 1.0;
    cases.push_back(c);
  }
  {
    Case c{"kill_at_level", {}};
    c.chaos.seed = 12;
    c.chaos.p_kill_at_level = 1.0;
    c.chaos.kill_level = 1;
    cases.push_back(c);
  }
  {
    Case c{"kill_before_reply", {}};
    c.chaos.seed = 13;
    c.chaos.p_kill_before_reply = 1.0;
    cases.push_back(c);
  }
  for (const Case& tc : cases) {
    SCOPED_TRACE(tc.name);
    auto bad = StartWorker(tc.chaos);
    auto good = StartWorker();
    ClusterCoordinator coord(
        g_, params_, kD,
        {WorkerEndpoint{bad->port()}, WorkerEndpoint{good->port()}},
        BaseOptions());
    int64_t total_retries = 0;
    for (int i = 0; i < 4; ++i) {
      ClusterQueryStats stats;
      Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectBytesIdentical(*r, want);
      total_retries += stats.retries;
    }
    // At least one of the four queries must have hit the chaos worker
    // first and failed over.
    EXPECT_GT(total_retries, 0);
    bad->Stop();
    good->Stop();
  }
}

TEST_F(ClusterE2ETest, CorruptAndTruncatedRepliesAreRejectedAndRetried) {
  const std::vector<ScoredPair> want = Reference();
  for (const bool truncate : {false, true}) {
    SCOPED_TRACE(truncate ? "truncate" : "corrupt");
    ChaosOptions chaos;
    chaos.seed = 21;
    if (truncate) {
      chaos.p_truncate_reply = 1.0;
    } else {
      chaos.p_corrupt_reply = 1.0;
    }
    auto bad = StartWorker(chaos);
    auto good = StartWorker();
    ClusterCoordinator coord(
        g_, params_, kD,
        {WorkerEndpoint{bad->port()}, WorkerEndpoint{good->port()}},
        BaseOptions());
    for (int i = 0; i < 4; ++i) {
      Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectBytesIdentical(*r, want);  // never a silently wrong answer
    }
    bad->Stop();
    good->Stop();
  }
}

TEST_F(ClusterE2ETest, AdmissionRejectionBacksOffThenSurfacesTyped) {
  WorkerOptions wo;
  wo.service.num_threads = 2;
  // A cost ceiling of 1 rejects every real query at admission.
  wo.service.admission.max_estimated_cost = 1;
  WorkerServer worker(g_, params_, kD, wo);
  ASSERT_TRUE(worker.Start().ok());

  CoordinatorOptions copts = BaseOptions();
  copts.retry.max_attempts = 3;
  ClusterCoordinator coord(g_, params_, kD, {WorkerEndpoint{worker.port()}},
                           copts);
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
  // Load shedding must SHED: no local fallback that would defeat the
  // worker's admission decision.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(stats.local_fallback);
  EXPECT_EQ(stats.retries, copts.retry.max_attempts - 1);
  EXPECT_GE(stats.retry_after_hint_micros, 1000);  // admission floor
  worker.Stop();
}

TEST_F(ClusterE2ETest, DeadWorkersDegradeToByteIdenticalLocalExecution) {
  auto worker = StartWorker();
  const uint16_t dead_port = worker->port();
  worker->Stop();  // nobody listens here any more

  ClusterCoordinator coord(g_, params_, kD, {WorkerEndpoint{dead_port}},
                           BaseOptions());
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, Reference());
  EXPECT_TRUE(stats.local_fallback);
  EXPECT_EQ(stats.worker_index, -1);

  // With fallback disabled the same situation is a typed error.
  CoordinatorOptions no_fallback = BaseOptions();
  no_fallback.allow_local_fallback = false;
  ClusterCoordinator strict(g_, params_, kD, {WorkerEndpoint{dead_port}},
                            no_fallback);
  Result<std::vector<ScoredPair>> r2 = strict.TwoWay(P_, Q_, kK);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kIOError);
}

TEST_F(ClusterE2ETest, FingerprintMismatchIsSurfacedAndRoutedAround) {
  // A worker serving a DIFFERENT graph: well-formed answers over the
  // wrong data — the worst silent-corruption case.
  Graph other = RandomGraph(60, 200, 8);
  WorkerOptions wo;
  wo.service.num_threads = 2;
  WorkerServer impostor(other, params_, kD, wo);
  ASSERT_TRUE(impostor.Start().ok());

  ClusterCoordinator coord(g_, params_, kD,
                           {WorkerEndpoint{impostor.port()}}, BaseOptions());
  Status ping = coord.PingAll();
  EXPECT_EQ(ping.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(coord.WorkerHealthy(0));
  EXPECT_EQ(coord.NumHealthy(), 0u);

  // Queries never reach the impostor; local execution stays correct.
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, Reference());
  EXPECT_TRUE(stats.local_fallback);
  impostor.Stop();
}

TEST_F(ClusterE2ETest, EffortDegradationIsByteIdenticalAcrossTheWire) {
  // The effort budget is the clock-free degradation anchor: the same
  // budget must cut at the same level locally and remotely, producing
  // identical partial answers (DESIGN.md §9 + §12).
  ExecContext local_exec;
  local_exec.effort_budget_blocks = 2;
  const std::vector<ScoredPair> want = Reference(&local_exec);

  auto worker = StartWorker();
  ClusterCoordinator coord(g_, params_, kD, {WorkerEndpoint{worker->port()}},
                           BaseOptions());
  ExecContext remote_exec;
  remote_exec.effort_budget_blocks = 2;
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r =
      coord.TwoWay(P_, Q_, kK, &stats, &remote_exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, want);
  EXPECT_TRUE(stats.degraded);
  EXPECT_LT(stats.level_reached, kD);
  EXPECT_GT(stats.eps_bound, 0.0);
  worker->Stop();
}

TEST_F(ClusterE2ETest, HedgingRacesAStragglerAndStaysByteIdentical) {
  ChaosOptions slow;
  slow.seed = 31;
  slow.p_delay_reply = 1.0;
  slow.delay_micros = 150000;  // far past the hedge threshold
  auto straggler = StartWorker(slow);
  auto fast = StartWorker();

  CoordinatorOptions copts = BaseOptions();
  copts.hedge.enabled = true;
  copts.hedge.warmup_samples = 0;  // hedge from the first query
  copts.hedge.min_delay_micros = 2000;
  copts.hedge.max_delay_micros = 5000;
  ClusterCoordinator coord(
      g_, params_, kD,
      {WorkerEndpoint{straggler->port()}, WorkerEndpoint{fast->port()}},
      copts);

  const std::vector<ScoredPair> want = Reference();
  int hedged = 0;
  int hedge_won = 0;
  for (int i = 0; i < 4; ++i) {
    ClusterQueryStats stats;
    Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBytesIdentical(*r, want);
    if (stats.hedged) ++hedged;
    if (stats.hedge_won) ++hedge_won;
  }
  // Whenever the straggler was primary, the hedge must have fired and
  // beaten the 150 ms delay.
  EXPECT_GT(hedged, 0);
  EXPECT_GT(hedge_won, 0);
  straggler->Stop();
  fast->Stop();
}

TEST_F(ClusterE2ETest, HeartbeatsTrackWorkerDeathAndQueriesKeepFlowing) {
  auto w0 = StartWorker();
  auto w1 = StartWorker();
  ClusterCoordinator coord(
      g_, params_, kD,
      {WorkerEndpoint{w0->port()}, WorkerEndpoint{w1->port()}},
      BaseOptions());
  EXPECT_TRUE(coord.PingAll().ok());
  EXPECT_EQ(coord.NumHealthy(), 2u);

  w0->Abort();  // sudden death
  (void)coord.PingAll();
  (void)coord.PingAll();  // miss_threshold = 2
  EXPECT_FALSE(coord.WorkerHealthy(0));
  EXPECT_EQ(coord.NumHealthy(), 1u);

  const std::vector<ScoredPair> want = Reference();
  for (int i = 0; i < 3; ++i) {
    ClusterQueryStats stats;
    Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBytesIdentical(*r, want);
    EXPECT_EQ(stats.worker_index, 1);
  }
  w1->Stop();
}

TEST_F(ClusterE2ETest, ChaosSoakNeverHangsOrAnswersWrong) {
  // Seeded mixed-fault soak over two chaos-armed workers: every query
  // either returns the byte-identical answer (possibly after retries,
  // hedges, or local fallback) or a typed Status. Runs under TSan in
  // CI, so it also shakes out races in the sever/drain paths.
  ChaosOptions chaos;
  chaos.seed = 99;
  chaos.p_kill_before_execute = 0.10;
  chaos.p_kill_at_level = 0.10;
  chaos.p_kill_before_reply = 0.10;
  chaos.p_delay_reply = 0.05;
  chaos.delay_micros = 20000;
  chaos.p_corrupt_reply = 0.10;
  chaos.p_truncate_reply = 0.10;
  ChaosOptions chaos2 = chaos;
  chaos2.seed = 100;
  auto w0 = StartWorker(chaos);
  auto w1 = StartWorker(chaos2);

  CoordinatorOptions copts = BaseOptions();
  copts.hedge.enabled = true;
  copts.hedge.warmup_samples = 4;
  copts.hedge.min_delay_micros = 2000;
  copts.hedge.max_delay_micros = 10000;
  ClusterCoordinator coord(
      g_, params_, kD,
      {WorkerEndpoint{w0->port()}, WorkerEndpoint{w1->port()}},
      copts);
  coord.StartHeartbeats();

  const std::vector<ScoredPair> want = Reference();
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    Result<std::vector<ScoredPair>> r = coord.TwoWay(P_, Q_, kK);
    if (r.ok()) {
      ExpectBytesIdentical(*r, want);
      ++completed;
    } else {
      // Typed, never silent: the only tolerable failure shapes.
      EXPECT_NE(r.status().code(), StatusCode::kOk);
    }
  }
  // Local fallback means chaos alone cannot zero out the run.
  EXPECT_EQ(completed, 40);
  coord.StopHeartbeats();
  w0->Stop();
  w1->Stop();
}

TEST(WorkerServerTest, StopIsIdempotentAndDrains) {
  Graph g = RandomGraph(30, 90, 3);
  DhtParams params = DhtParams::Lambda(0.2);
  WorkerOptions wo;
  wo.service.num_threads = 1;
  WorkerServer server(g, params, 4, wo);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  server.Abort();
}

// --------------------------------------------- process supervision

/// Open descriptors of this process, via /proc/self/fd. The DIR's own
/// fd is included in every call, so before/after comparisons cancel.
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST(WorkerProcessTest, FailedAndCleanSpawnsLeakNoFileDescriptors) {
#ifdef DHTJOIN_TSAN_BUILD
  GTEST_SKIP() << "fork-based; covered by the uninstrumented jobs";
#endif
  Graph g = RandomGraph(30, 90, 3);
  DhtParams params = DhtParams::Lambda(0.2);
  // Occupy a port so every spawned child fails its bind and reports
  // failure back through the status pipe.
  Result<cluster::Listener> occupied = cluster::Listener::BindLoopback(0);
  ASSERT_TRUE(occupied.ok());

  WorkerOptions wo;
  wo.service.num_threads = 1;
  wo.port = occupied->port();
  const int before = CountOpenFds();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 8; ++i) {
    Result<cluster::SpawnedWorker> r =
        cluster::SpawnWorkerProcess(g, params, 3, wo);
    EXPECT_FALSE(r.ok()) << "bind to an occupied port succeeded";
  }
  EXPECT_EQ(CountOpenFds(), before) << "failed spawns leaked descriptors";

  // The success path must be just as clean once the worker is stopped.
  wo.port = 0;
  Result<cluster::SpawnedWorker> w =
      cluster::SpawnWorkerProcess(g, params, 3, wo);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_TRUE(cluster::StopWorkerProcess(*w, 2000).ok());
  EXPECT_EQ(CountOpenFds(), before) << "spawn/stop cycle leaked descriptors";
}

/// Respawn tests share this setup: the supervisor MUST fork its agent
/// while the test process has no live service threads, so everything
/// threaded (reference service, coordinator) is built afterwards —
/// the same ordering the CLI uses.
struct RespawnRig {
  Graph g = RandomGraph(60, 200, 7);
  DhtParams params = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 25, 55);
  static constexpr int kD = 6;
  static constexpr std::size_t kK = 15;

  CoordinatorOptions Options(cluster::WorkerSupervisor* sup,
                             const obs::Clock* clock) const {
    CoordinatorOptions o;
    o.hedge.enabled = false;
    o.retry.backoff.initial_micros = 200;
    o.retry.backoff.max_micros = 2000;
    o.local_service.num_threads = 2;
    o.clock = clock;
    o.supervisor = sup;
    o.respawn.enabled = true;
    o.respawn.backoff.initial_micros = 100000;  // 100ms, 200ms, 400ms...
    o.respawn.backoff.max_micros = 10000000;
    o.respawn.backoff.multiplier = 2.0;
    o.respawn.backoff.jitter = 0.0;  // exact schedule, pinned below
    return o;
  }
};

TEST(RespawnTest, BackoffScheduleAndLifetimeCapAreHonored) {
#ifdef DHTJOIN_TSAN_BUILD
  GTEST_SKIP() << "fork-based; covered by the uninstrumented jobs";
#endif
  RespawnRig rig;
  cluster::WorkerSlot slot;
  slot.options.service.num_threads = 2;
  auto sup = cluster::WorkerSupervisor::Start(rig.g, rig.params, rig.kD,
                                              {slot});
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  Result<cluster::SpawnedWorker> w = (*sup)->Spawn(0);
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  obs::FakeClock clock;
  CoordinatorOptions copts = rig.Options(sup->get(), &clock);
  copts.respawn.max_respawns = 2;
  ClusterCoordinator coord(rig.g, rig.params, rig.kD,
                           {WorkerEndpoint{w->port}}, copts);
  ASSERT_TRUE(coord.PingAll().ok());
  const std::vector<ScoredPair> want = [&] {
    Result<std::vector<ScoredPair>> r =
        coord.local_service().TwoWay(rig.P, rig.Q, rig.kK);
    EXPECT_TRUE(r.ok());
    return *r;
  }();

  auto kill_and_observe = [&] {
    ASSERT_TRUE((*sup)->Kill(0).ok());
    (void)coord.PingAll();
    (void)coord.PingAll();  // miss_threshold = 2
    ASSERT_FALSE(coord.WorkerHealthy(0));
  };

  // Death #1: the first pass schedules, the relaunch happens only
  // once the FULL first backoff delay elapsed on the injected clock.
  kill_and_observe();
  EXPECT_EQ(coord.TryRespawns(), 0);  // schedules, does not spawn
  clock.AdvanceMillis(99);
  EXPECT_EQ(coord.TryRespawns(), 0);
  EXPECT_EQ(coord.WorkerRespawns(0), 0);
  clock.AdvanceMillis(2);
  EXPECT_EQ(coord.TryRespawns(), 1);
  EXPECT_EQ(coord.WorkerRespawns(0), 1);
  EXPECT_TRUE(coord.WorkerHealthy(0));
  {
    ClusterQueryStats stats;
    Result<std::vector<ScoredPair>> r = coord.TwoWay(rig.P, rig.Q, rig.kK,
                                                     &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBytesIdentical(*r, want);
    EXPECT_EQ(stats.worker_index, 0);  // the RESPAWNED worker answered
    EXPECT_FALSE(stats.local_fallback);
  }

  // Death #2: the backoff never resets, so the delay doubles.
  kill_and_observe();
  EXPECT_EQ(coord.TryRespawns(), 0);
  clock.AdvanceMillis(199);
  EXPECT_EQ(coord.TryRespawns(), 0);
  clock.AdvanceMillis(2);
  EXPECT_EQ(coord.TryRespawns(), 1);
  EXPECT_EQ(coord.WorkerRespawns(0), 2);

  // Death #3: at max_respawns the slot is abandoned for good, and
  // queries degrade to byte-identical local execution.
  kill_and_observe();
  clock.AdvanceMillis(100000);
  EXPECT_EQ(coord.TryRespawns(), 0);
  EXPECT_EQ(coord.WorkerRespawns(0), 2);
  EXPECT_FALSE(coord.WorkerHealthy(0));
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(rig.P, rig.Q, rig.kK,
                                                   &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, want);
  EXPECT_TRUE(stats.local_fallback);
}

TEST(RespawnTest, RespawnedWorkerRejoinsWarmAndByteIdentical) {
#ifdef DHTJOIN_TSAN_BUILD
  GTEST_SKIP() << "fork-based; covered by the uninstrumented jobs";
#endif
  RespawnRig rig;
  const std::string snap = ::testing::TempDir() + "respawn_warm.snap";
  std::remove(snap.c_str());
  cluster::WorkerSlot slot;
  slot.options.service.num_threads = 2;
  slot.options.checkpoint_path = snap;
  auto sup = cluster::WorkerSupervisor::Start(rig.g, rig.params, rig.kD,
                                              {slot});
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  Result<cluster::SpawnedWorker> w = (*sup)->Spawn(0);
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  obs::FakeClock clock;
  ClusterCoordinator coord(rig.g, rig.params, rig.kD,
                           {WorkerEndpoint{w->port}},
                           rig.Options(sup->get(), &clock));
  ASSERT_TRUE(coord.PingAll().ok());

  // Warm the worker's score cache, then stop it gracefully: the
  // SIGTERM path writes the final checkpoint.
  std::vector<ScoredPair> want;
  {
    ClusterQueryStats stats;
    Result<std::vector<ScoredPair>> r = coord.TwoWay(rig.P, rig.Q, rig.kK,
                                                     &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(stats.worker_index, 0);
    want = *r;
  }
  ASSERT_TRUE((*sup)->StopSlot(0, 5000).ok());

  // The coordinator sees an ordinary death and respawns the slot; the
  // relaunched worker must warm-load the checkpoint.
  (void)coord.PingAll();
  (void)coord.PingAll();
  ASSERT_FALSE(coord.WorkerHealthy(0));
  EXPECT_EQ(coord.TryRespawns(), 0);
  clock.AdvanceMillis(101);
  ASSERT_EQ(coord.TryRespawns(), 1);
  ASSERT_TRUE(coord.WorkerHealthy(0));

  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(rig.P, rig.Q, rig.kK,
                                                   &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectBytesIdentical(*r, want);
  EXPECT_EQ(stats.worker_index, 0);
  // The restored cache must serve this query WARM — the observable
  // difference between a warm rejoin and a silent cold restart.
  EXPECT_GT(stats.warm_targets, 0);
  EXPECT_EQ(stats.cold_targets, 0);
  std::remove(snap.c_str());
}

TEST(RespawnTest, FingerprintMismatchedWorkerIsQuarantinedNotRespawned) {
#ifdef DHTJOIN_TSAN_BUILD
  GTEST_SKIP() << "fork-based; covered by the uninstrumented jobs";
#endif
  RespawnRig rig;
  // The slot is mis-deployed: it serves a DIFFERENT graph, so every
  // spawn comes back fingerprint-mismatched. Respawning cannot fix a
  // deployment bug — the slot must be quarantined, not crash-looped.
  Graph wrong = RandomGraph(60, 200, 8);
  cluster::WorkerSlot slot;
  slot.graph = &wrong;
  slot.options.service.num_threads = 2;
  auto sup = cluster::WorkerSupervisor::Start(rig.g, rig.params, rig.kD,
                                              {slot});
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  Result<cluster::SpawnedWorker> w = (*sup)->Spawn(0);
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  obs::FakeClock clock;
  ClusterCoordinator coord(rig.g, rig.params, rig.kD,
                           {WorkerEndpoint{w->port}},
                           rig.Options(sup->get(), &clock));
  Status ping = coord.PingAll();
  EXPECT_EQ(ping.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(coord.WorkerQuarantined(0));
  EXPECT_FALSE(coord.WorkerHealthy(0));

  // No amount of elapsed time respawns a quarantined slot.
  for (int round = 0; round < 4; ++round) {
    clock.AdvanceMillis(100000);
    EXPECT_EQ(coord.TryRespawns(), 0);
  }
  EXPECT_EQ(coord.WorkerRespawns(0), 0);
  EXPECT_TRUE(coord.WorkerQuarantined(0));

  // Queries never touch the impostor; local execution stays correct.
  ClusterQueryStats stats;
  Result<std::vector<ScoredPair>> r = coord.TwoWay(rig.P, rig.Q, rig.kK,
                                                   &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(stats.local_fallback);
  Result<std::vector<ScoredPair>> want =
      coord.local_service().TwoWay(rig.P, rig.Q, rig.kK);
  ASSERT_TRUE(want.ok());
  ExpectBytesIdentical(*r, *want);
  ASSERT_TRUE((*sup)->Kill(0).ok());
}

TEST(TransportTest, ConnectToDeadPortFailsTyped) {
  // Bind-then-close gives a port with (very likely) no listener.
  Result<cluster::Listener> listener = cluster::Listener::BindLoopback(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->ShutdownBoth();
  *listener = cluster::Listener();  // closed
  Result<cluster::Socket> conn = cluster::ConnectLoopback(
      port, Deadline::AfterMillis(200));
  EXPECT_FALSE(conn.ok());
}

}  // namespace
}  // namespace dhtjoin
