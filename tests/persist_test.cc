/// \file tests/persist_test.cc
/// \brief Durability substrate (persist/* + serve warm state): the
/// snapshot codec fails closed on EVERY truncation offset and bit
/// flip, the atomic writer leaves last-good-or-new at every crash
/// phase, and a warm-restored service answers byte-identically to a
/// cold one (DESIGN.md §13).

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/wire.h"
#include "persist/metrics.h"
#include "persist/snapshot.h"
#include "serve/session.h"
#include "serve/warm_state.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using persist::CheckpointPhase;
using persist::DecodeSnapshot;
using persist::EncodeSnapshot;
using persist::ReadSnapshotFile;
using persist::SnapshotFile;
using persist::SnapshotSection;
using persist::WriteSnapshotFile;
using serve::DhtJoinService;
using testing::RandomGraph;
using testing::Range;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "persist_test_" + name;
}

void WriteRawFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

SnapshotFile SampleSnapshot() {
  SnapshotFile file;
  file.graph_fp = 0x1122334455667788ull;
  file.params_fp = 0x99aabbccddeeff00ull;
  file.sections.push_back(SnapshotSection{1, {10, 20, 30, 40, 50}});
  file.sections.push_back(SnapshotSection{2, {}});  // empty payload
  SnapshotSection big;
  big.kind = 4;
  for (int i = 0; i < 300; ++i) big.payload.push_back(uint8_t(i * 7));
  file.sections.push_back(std::move(big));
  return file;
}

void ExpectBytesIdentical(const std::vector<ScoredPair>& got,
                          const std::vector<ScoredPair>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].p, want[i].p) << "pair " << i;
    EXPECT_EQ(got[i].q, want[i].q) << "pair " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].score),
              std::bit_cast<uint64_t>(want[i].score))
        << "pair " << i;
  }
}

// ----------------------------------------------------------- codec

TEST(SnapshotCodecTest, RoundTripsHeaderAndSections) {
  const SnapshotFile file = SampleSnapshot();
  const std::vector<uint8_t> bytes = EncodeSnapshot(file);
  Result<SnapshotFile> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->graph_fp, file.graph_fp);
  EXPECT_EQ(decoded->params_fp, file.params_fp);
  ASSERT_EQ(decoded->sections.size(), file.sections.size());
  for (std::size_t i = 0; i < file.sections.size(); ++i) {
    EXPECT_EQ(decoded->sections[i].kind, file.sections[i].kind);
    EXPECT_EQ(decoded->sections[i].payload, file.sections[i].payload);
  }
}

TEST(SnapshotCodecTest, EmptySnapshotRoundTrips) {
  SnapshotFile file;
  file.graph_fp = 7;
  file.params_fp = 8;
  Result<SnapshotFile> decoded = DecodeSnapshot(EncodeSnapshot(file));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->sections.empty());
}

TEST(SnapshotCodecTest, RejectsTruncationAtEveryByteOffset) {
  // A kill -9 can stop a non-atomic write at ANY byte. Every strict
  // prefix must decode to a typed error — never crash, never a
  // partially-filled snapshot.
  const std::vector<uint8_t> bytes = EncodeSnapshot(SampleSnapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Result<SnapshotFile> r =
        DecodeSnapshot(std::span<const uint8_t>(bytes.data(), len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << len << " bytes";
  }
}

TEST(SnapshotCodecTest, RejectsEverySingleBitFlip) {
  // Header bytes are covered by the header checksum, section bytes
  // (prefix AND payload) by the section checksum, and the checksum
  // fields by themselves: no byte may flip undetected.
  const std::vector<uint8_t> bytes = EncodeSnapshot(SampleSnapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[i] = static_cast<uint8_t>(mutated[i] ^ (1u << bit));
      Result<SnapshotFile> r = DecodeSnapshot(mutated);
      EXPECT_FALSE(r.ok()) << "byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(SnapshotCodecTest, RejectsTrailingBytesAndWrongVersion) {
  std::vector<uint8_t> bytes = EncodeSnapshot(SampleSnapshot());
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(trailing).ok());

  // A future-version file must be refused outright, not half-parsed.
  std::vector<uint8_t> vnext = bytes;
  vnext[4] = static_cast<uint8_t>(persist::kSnapshotVersion + 1);
  Result<SnapshotFile> r = DecodeSnapshot(vnext);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

// ---------------------------------------------------- atomic writer

TEST(AtomicWriterTest, AbandonAtEveryPhaseLeavesLastGoodOrNew) {
  const std::string path = TempPath("abandon.snap");
  SnapshotFile good;
  good.graph_fp = 1;
  good.params_fp = 2;
  good.sections.push_back(SnapshotSection{1, {1, 2, 3}});
  ASSERT_TRUE(WriteSnapshotFile(path, good).ok());

  SnapshotFile next;
  next.graph_fp = 1;
  next.params_fp = 2;
  next.sections.push_back(SnapshotSection{1, {9, 9, 9, 9}});

  for (int phase = 0; phase < persist::kNumCheckpointPhases; ++phase) {
    const auto kill_at = static_cast<CheckpointPhase>(phase);
    SCOPED_TRACE(persist::CheckpointPhaseName(kill_at));
    Status st = WriteSnapshotFile(path, next, [kill_at](CheckpointPhase p) {
      return p != kill_at;
    });
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
    // The on-disk state must be a complete snapshot: the previous one
    // for any pre-rename crash, the new one at/after the rename.
    Result<SnapshotFile> loaded = ReadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    if (kill_at == CheckpointPhase::kAfterRename) {
      EXPECT_EQ(loaded->sections[0].payload, next.sections[0].payload);
    } else {
      EXPECT_EQ(loaded->sections[0].payload, good.sections[0].payload);
    }
    // No abandoned temp file may survive.
    EXPECT_FALSE(std::ifstream(path + ".tmp." + std::to_string(getpid()))
                     .good());
    // Reset to the known-good state for the next phase.
    ASSERT_TRUE(WriteSnapshotFile(path, good).ok());
  }
  std::remove(path.c_str());
}

TEST(AtomicWriterTest, MissingFileIsNotFoundNotError) {
  Result<SnapshotFile> r = ReadSnapshotFile(TempPath("never_written.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------- warm state

class WarmStateTest : public ::testing::Test {
 protected:
  WarmStateTest()
      : g_(RandomGraph(60, 200, 7)),
        params_(DhtParams::Lambda(0.2)),
        P_(Range("P", 0, 20)),
        Q_(Range("Q", 25, 55)) {}

  static constexpr int kD = 6;
  static constexpr std::size_t kK = 15;

  static DhtJoinService::Options ServiceOptions() {
    DhtJoinService::Options o;
    o.num_threads = 2;
    return o;
  }

  Graph g_;
  DhtParams params_;
  NodeSet P_;
  NodeSet Q_;
};

TEST_F(WarmStateTest, RestoredServiceAnswersByteIdenticallyAndWarm) {
  const std::string path = TempPath("warm_roundtrip.snap");
  DhtJoinService cold(g_, params_, kD, ServiceOptions());
  Result<std::vector<ScoredPair>> want = cold.TwoWay(P_, Q_, kK);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(cold.SaveWarmState(path).ok());

  DhtJoinService warmed(g_, params_, kD, ServiceOptions());
  Result<int64_t> restored = warmed.LoadWarmState(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(restored.value(), 0);

  serve::QueryStats qs;
  Result<std::vector<ScoredPair>> got = warmed.TwoWay(P_, Q_, kK, &qs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBytesIdentical(*got, *want);
  // The restored cache must actually be USED, not just loaded.
  EXPECT_GT(qs.warm_targets, 0);

  // Restore-into-warm is idempotent: loading again changes nothing
  // the next answer can observe.
  Result<int64_t> again = warmed.LoadWarmState(path);
  ASSERT_TRUE(again.ok());
  Result<std::vector<ScoredPair>> got2 = warmed.TwoWay(P_, Q_, kK);
  ASSERT_TRUE(got2.ok());
  ExpectBytesIdentical(*got2, *want);
  std::remove(path.c_str());
}

TEST_F(WarmStateTest, FingerprintMismatchFallsBackColdSilently) {
  const std::string path = TempPath("warm_mismatch.snap");
  DhtJoinService source(g_, params_, kD, ServiceOptions());
  ASSERT_TRUE(source.TwoWay(P_, Q_, kK).ok());
  ASSERT_TRUE(source.SaveWarmState(path).ok());

  // A service over a DIFFERENT graph must refuse the warm state (OK,
  // zero restored — a stale snapshot is an ordinary cold start) and
  // still answer ITS graph's queries correctly.
  Graph other = RandomGraph(60, 200, 8);
  DhtJoinService stranger(other, params_, kD, ServiceOptions());
  Result<int64_t> restored = stranger.LoadWarmState(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), 0);

  const obs::MetricsSnapshot snap = stranger.SnapshotMetrics();
  EXPECT_GE(snap.FindCounter("persist.restore.rejects")->value, 1);
  EXPECT_EQ(snap.FindCounter("persist.restore.hits")->value, 0);

  DhtJoinService reference(other, params_, kD, ServiceOptions());
  Result<std::vector<ScoredPair>> want = reference.TwoWay(P_, Q_, kK);
  Result<std::vector<ScoredPair>> got = stranger.TwoWay(P_, Q_, kK);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectBytesIdentical(*got, *want);
  std::remove(path.c_str());
}

TEST_F(WarmStateTest, CorruptSnapshotIsTypedAndServiceStaysServing) {
  const std::string path = TempPath("warm_corrupt.snap");
  DhtJoinService source(g_, params_, kD, ServiceOptions());
  ASSERT_TRUE(source.TwoWay(P_, Q_, kK).ok());
  ASSERT_TRUE(source.SaveWarmState(path).ok());

  Result<std::vector<uint8_t>> bytes = persist::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());

  // Fuzz the WHOLE file: every truncation boundary and a bit flip in
  // every byte must produce a typed load failure (or a silent cold
  // start — never a crash, never poisoned state), after which the
  // service still answers byte-identically.
  DhtJoinService cold_ref(g_, params_, kD, ServiceOptions());
  Result<std::vector<ScoredPair>> want = cold_ref.TwoWay(P_, Q_, kK);
  ASSERT_TRUE(want.ok());

  const std::size_t n = bytes->size();
  for (std::size_t len = 0; len < n; len += (n / 37) + 1) {
    std::vector<uint8_t> trunc(bytes->begin(),
                               bytes->begin() + static_cast<int64_t>(len));
    WriteRawFile(path, trunc);
    DhtJoinService victim(g_, params_, kD, ServiceOptions());
    Result<int64_t> r = victim.LoadWarmState(path);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
    Result<std::vector<ScoredPair>> got = victim.TwoWay(P_, Q_, kK);
    ASSERT_TRUE(got.ok());
    ExpectBytesIdentical(*got, *want);
  }
  for (std::size_t i = 0; i < n; i += (n / 53) + 1) {
    std::vector<uint8_t> flipped = *bytes;
    flipped[i] = static_cast<uint8_t>(flipped[i] ^ 0x40u);
    WriteRawFile(path, flipped);
    DhtJoinService victim(g_, params_, kD, ServiceOptions());
    Result<int64_t> r = victim.LoadWarmState(path);
    EXPECT_FALSE(r.ok()) << "bit flip at byte " << i << " accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST_F(WarmStateTest, GarbageSectionPayloadsAreRejectedByRecordDecode) {
  // Sections with VALID snapshot checksums but garbage record bytes:
  // the warm-record decoder's own bounds checks must refuse them.
  DhtJoinService service(g_, params_, kD, ServiceOptions());
  const std::string path = TempPath("warm_garbage.snap");
  SnapshotFile file;
  file.graph_fp = service.graph_fingerprint();
  file.params_fp = cluster::ParamsFingerprint(params_, kD);
  // kind 1 = backward snapshot, with a payload that is far too short.
  file.sections.push_back(SnapshotSection{1, {0xff, 0x01, 0x02}});
  ASSERT_TRUE(WriteSnapshotFile(path, file).ok());
  Result<int64_t> r = service.LoadWarmState(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Unknown section kind: same typed refusal.
  file.sections[0] = SnapshotSection{77, {1, 2, 3, 4}};
  ASSERT_TRUE(WriteSnapshotFile(path, file).ok());
  Result<int64_t> r2 = service.LoadWarmState(path);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(WarmStateTest, PersistMetricsTickOnSaveAndRestore) {
  const std::string path = TempPath("warm_metrics.snap");
  DhtJoinService source(g_, params_, kD, ServiceOptions());
  ASSERT_TRUE(source.TwoWay(P_, Q_, kK).ok());
  ASSERT_TRUE(source.SaveWarmState(path).ok());
  {
    const obs::MetricsSnapshot snap = source.SnapshotMetrics();
    EXPECT_EQ(snap.FindCounter("persist.checkpoint.writes")->value, 1);
    EXPECT_GT(snap.FindCounter("persist.checkpoint.bytes")->value, 0);
    EXPECT_EQ(snap.FindCounter("persist.checkpoint.failures")->value, 0);
  }
  DhtJoinService warmed(g_, params_, kD, ServiceOptions());
  Result<int64_t> restored = warmed.LoadWarmState(path);
  ASSERT_TRUE(restored.ok());
  {
    const obs::MetricsSnapshot snap = warmed.SnapshotMetrics();
    EXPECT_EQ(snap.FindCounter("persist.restore.hits")->value,
              restored.value());
    EXPECT_EQ(snap.FindCounter("persist.restore.rejects")->value, 0);
  }
  // A missing file is a cold start, not a reject.
  DhtJoinService cold(g_, params_, kD, ServiceOptions());
  Result<int64_t> none = cold.LoadWarmState(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  {
    const obs::MetricsSnapshot snap = cold.SnapshotMetrics();
    EXPECT_EQ(snap.FindCounter("persist.restore.rejects")->value, 0);
  }
  std::remove(path.c_str());
}

// -------------------------------------------------- chaos schedule

TEST(CheckpointChaosTest, DrawIsDeterministicAndCoversEveryPhase) {
  cluster::ChaosOptions opts;
  opts.seed = 1234;
  opts.p_kill_at_checkpoint = 1.0;
  bool phase_seen[persist::kNumCheckpointPhases] = {};
  for (uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
    cluster::CheckpointFault a = cluster::DrawCheckpointFault(opts, ordinal);
    cluster::CheckpointFault b = cluster::DrawCheckpointFault(opts, ordinal);
    EXPECT_TRUE(a.armed);
    EXPECT_EQ(a.kill_phase, b.kill_phase) << "ordinal " << ordinal;
    phase_seen[static_cast<int>(a.kill_phase)] = true;
  }
  for (int p = 0; p < persist::kNumCheckpointPhases; ++p) {
    EXPECT_TRUE(phase_seen[p])
        << persist::CheckpointPhaseName(static_cast<CheckpointPhase>(p));
  }
  // Probability 0 (or chaos disabled) never arms.
  opts.p_kill_at_checkpoint = 0.0;
  EXPECT_FALSE(cluster::DrawCheckpointFault(opts, 0).armed);
  cluster::ChaosOptions off;
  off.p_kill_at_checkpoint = 1.0;  // seed 0 = disabled
  EXPECT_FALSE(cluster::DrawCheckpointFault(off, 0).armed);
}

}  // namespace
}  // namespace dhtjoin
