/// \file tests/incremental_test.cc
/// \brief The resumable F-structure enumerator behind PJ-i: its output
/// must equal the full sorted join, one pair at a time, for every m.

#include <gtest/gtest.h>

#include "join2/incremental.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::RefTwoWayJoin;

struct IncCase {
  uint64_t seed;
  double lambda;  // 0 = DHTe
  std::size_t m;
  UpperBoundKind bound;
};

class IncrementalSweep : public ::testing::TestWithParam<IncCase> {};

TEST_P(IncrementalSweep, EnumeratesFullJoinInOrder) {
  const auto& c = GetParam();
  Graph g = RandomGraph(50, 150, c.seed, /*undirected=*/true,
                        /*weighted=*/(c.seed % 2) == 0);
  DhtParams p =
      c.lambda > 0 ? DhtParams::Lambda(c.lambda) : DhtParams::Exponential();
  const int d = 8;
  NodeSet P = Range("P", 0, 18);
  NodeSet Q = Range("Q", 24, 42);
  auto want = RefTwoWayJoin(g, p, d, P, Q, static_cast<std::size_t>(-1));

  auto join = IncrementalTwoWayJoin::Create(
      g, p, d, P, Q, c.m, IncrementalTwoWayJoin::Options{c.bound});
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  std::vector<ScoredPair> got;
  while (auto next = (*join)->Next()) {
    got.push_back(*next);
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9) << "rank " << i;
  }
  // Exhausted for good.
  EXPECT_FALSE((*join)->Next().has_value());
  EXPECT_EQ((*join)->num_returned(), want.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalSweep,
    ::testing::Values(
        IncCase{201, 0.2, 0, UpperBoundKind::kY},    // fully lazy
        IncCase{202, 0.2, 1, UpperBoundKind::kY},
        IncCase{203, 0.2, 25, UpperBoundKind::kY},
        IncCase{204, 0.2, 5000, UpperBoundKind::kY},  // m > pair space
        IncCase{205, 0.6, 25, UpperBoundKind::kY},
        IncCase{206, 0.8, 10, UpperBoundKind::kY},   // loose X regime
        IncCase{207, 0.2, 25, UpperBoundKind::kX},
        IncCase{208, 0.8, 25, UpperBoundKind::kX},
        IncCase{209, 0.0, 25, UpperBoundKind::kY},   // DHTe
        IncCase{210, 0.0, 0, UpperBoundKind::kX}));

TEST(IncrementalTest, PairsNeverRepeat) {
  Graph g = RandomGraph(40, 120, 211);
  DhtParams p = DhtParams::Lambda(0.2);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 15),
                                            Range("Q", 20, 35), 10);
  ASSERT_TRUE(join.ok());
  std::set<uint64_t> seen;
  while (auto next = (*join)->Next()) {
    EXPECT_TRUE(seen.insert(PairKey(next->p, next->q)).second)
        << "duplicate pair (" << next->p << "," << next->q << ")";
  }
}

TEST(IncrementalTest, ScoresNonIncreasing) {
  Graph g = RandomGraph(40, 140, 212, true, true);
  DhtParams p = DhtParams::Lambda(0.5);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 15),
                                            Range("Q", 18, 38), 7);
  ASSERT_TRUE(join.ok());
  double prev = std::numeric_limits<double>::infinity();
  while (auto next = (*join)->Next()) {
    EXPECT_LE(next->score, prev + 1e-12);
    prev = next->score;
  }
}

TEST(IncrementalTest, ScoresAreExactDStepValues) {
  Graph g = RandomGraph(40, 120, 213);
  DhtParams p = DhtParams::Lambda(0.4);
  const int d = 8;
  auto join = IncrementalTwoWayJoin::Create(g, p, d, Range("P", 0, 15),
                                            Range("Q", 20, 35), 5);
  ASSERT_TRUE(join.ok());
  BackwardWalker w(g);
  for (int i = 0; i < 20; ++i) {
    auto next = (*join)->Next();
    if (!next) break;
    w.Reset(p, ExtNodeId(next->q));
    w.Advance(d);
    EXPECT_NEAR(next->score, w.Score(ExtNodeId(next->p)), 1e-12);
  }
}

TEST(IncrementalTest, EmptyResultWhenNothingReachable) {
  Graph g = testing::PathGraph(3);  // 0 -> 1 -> 2
  DhtParams p = DhtParams::Lambda(0.2);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, NodeSet("P", {1, 2}),
                                            NodeSet("Q", std::vector<NodeId>{0}), 5);
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE((*join)->Next().has_value());
}

TEST(IncrementalTest, SelfPairsSkippedWithOverlappingSets) {
  Graph g = testing::TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 7),
                                            Range("Q", 3, 10), 6);
  ASSERT_TRUE(join.ok());
  while (auto next = (*join)->Next()) {
    EXPECT_NE(next->p, next->q);
  }
}

TEST(IncrementalTest, InvalidInputsRejected) {
  Graph g = testing::TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  EXPECT_FALSE(IncrementalTwoWayJoin::Create(g, p, 0, Range("P", 0, 5),
                                             Range("Q", 5, 10), 5)
                   .ok());
  EXPECT_FALSE(IncrementalTwoWayJoin::Create(g, p, 8,
                                             NodeSet("E", std::vector<NodeId>{}),
                                             Range("Q", 5, 10), 5)
                   .ok());
}

TEST(IncrementalTest, LazyAndEagerAgree) {
  Graph g = RandomGraph(45, 130, 214);
  DhtParams p = DhtParams::Lambda(0.3);
  auto lazy = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 16),
                                            Range("Q", 20, 36), 0);
  auto eager = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 16),
                                             Range("Q", 20, 36), 40);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(eager.ok());
  while (true) {
    auto a = (*lazy)->Next();
    auto b = (*eager)->Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_NEAR(a->score, b->score, 1e-9);
  }
}

TEST(IncrementalTest, EagerScheduleDoesLessWorkOnNextThanLazy) {
  // After a deep top-m run, the next few pairs should come from cached
  // exact entries without extra walks.
  Graph g = RandomGraph(60, 200, 215);
  DhtParams p = DhtParams::Lambda(0.2);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 20),
                                            Range("Q", 25, 50), 30);
  ASSERT_TRUE(join.ok());
  for (int i = 0; i < 10; ++i) (*join)->Next();
  int64_t walks_before = (*join)->stats().walks_started;
  for (int i = 0; i < 5; ++i) (*join)->Next();
  int64_t walks_after = (*join)->stats().walks_started;
  // A from-scratch top-k join would need ~|Q| walks; the incremental
  // structure should need far fewer (often zero) for 5 more pairs.
  EXPECT_LE(walks_after - walks_before, 10);
}

TEST(IncrementalTest, BatchScheduleResumeCountersAreExact) {
  // Regression for a double-count: the batch schedule used to fold the
  // per-round hit/miss deltas AND add the cumulative engine counters
  // once more at the end, inflating state_hits/state_misses ~2x. The
  // semantics are "one hit or miss per (target, round) resume attempt":
  // with m larger than the pair space nothing prunes, so an 18-target
  // schedule at d = 8 runs rounds l = 1, 2, 4 plus the exact-8 pass —
  // every target misses once (cold at l = 1) and hits exactly 3 times.
  Graph g = RandomGraph(50, 150, 204, /*undirected=*/true,
                        /*weighted=*/true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 18);
  NodeSet Q = Range("Q", 24, 42);  // 18 targets
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, P, Q, 5000);
  ASSERT_TRUE(join.ok());

  const TwoWayJoinStats& st = (*join)->stats();
  const int64_t targets = 18;
  EXPECT_EQ(st.state_misses, targets);
  EXPECT_EQ(st.state_hits, 3 * targets);
  EXPECT_EQ(st.state_evictions, 0);
  // Nothing pruned: the live frontier stays |Q| through every round.
  ASSERT_EQ(st.live_per_iteration.size(), 4u);
  for (const int64_t live : st.live_per_iteration) {
    EXPECT_EQ(live, targets);
  }
  // pool_barriers is the sum of its per-round breakdown (3 rounds +
  // the final pass), also delta-folded — a second fold would break it.
  ASSERT_EQ(st.barriers_per_iteration.size(), 4u);
  int64_t total = 0;
  for (const int64_t b : st.barriers_per_iteration) total += b;
  EXPECT_EQ(st.pool_barriers, total);
}

TEST(IncrementalTest, ScalarPathCountsOneMissPerColdTarget) {
  // The m = 0 enumerator deepens targets one scalar walk at a time:
  // with an un-evicting pool each target is cold exactly once, so
  // misses == touched targets, independent of how many levels each
  // target is later resumed through (those are hits).
  Graph g = RandomGraph(40, 120, 216, /*undirected=*/true,
                        /*weighted=*/false);
  DhtParams p = DhtParams::Lambda(0.2);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, Range("P", 0, 15),
                                            Range("Q", 20, 36), 0);
  ASSERT_TRUE(join.ok());
  while ((*join)->Next().has_value()) {
  }
  const TwoWayJoinStats& st = (*join)->stats();
  EXPECT_EQ(st.state_evictions, 0);
  EXPECT_EQ(st.state_misses, 16);  // |Q|: every target cold exactly once
  EXPECT_GT(st.state_hits, 0);     // deeper levels resume, never restart
}

}  // namespace
}  // namespace dhtjoin
