/// \file tests/bounds_test.cc
/// \brief The X/Y remainder bounds: Lemma 2, Theorem 1, and Lemma 5.

#include <gtest/gtest.h>

#include "dht/backward.h"
#include "dht/bounds.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::TwoCommunityGraph;

class BoundsSweep : public ::testing::TestWithParam<double> {};

TEST_P(BoundsSweep, XBoundBracketsRemainder) {
  // Lemma 2: h(p,q) <= h_l(p,q) + X_l; since h_d <= h, also h_d.
  const double lambda = GetParam();
  Graph g = RandomGraph(40, 120, 31);
  DhtParams p = DhtParams::Lambda(lambda);
  const int d = 10;
  BackwardWalker partial(g), full(g);
  for (NodeId q : {0, 13, 29}) {
    full.Reset(p, ExtNodeId(q));
    full.Advance(d);
    partial.Reset(p, ExtNodeId(q));
    for (int l = 1; l <= d; l++) {
      partial.Advance(1);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (u == q) continue;
        EXPECT_LE(full.Score(ExtNodeId(u)),
                  partial.Score(ExtNodeId(u)) + p.XBound(l) + 1e-12)
            << "q=" << q << " u=" << u << " l=" << l;
      }
    }
  }
}

TEST_P(BoundsSweep, YBoundBracketsRemainder) {
  // Theorem 1: h_d(p,q) <= h_l(p,q) + Y_l(P, q).
  const double lambda = GetParam();
  Graph g = RandomGraph(40, 120, 32);
  DhtParams p = DhtParams::Lambda(lambda);
  const int d = 10;
  NodeSet P = Range("P", 0, 12);
  NodeSet Q = Range("Q", 20, 32);
  YBoundTable ytable(g, p, d, P, Q);
  BackwardWalker partial(g), full(g);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    ExtNodeId q = Q[qi];
    full.Reset(p, q);
    full.Advance(d);
    partial.Reset(p, q);
    for (int l = 1; l <= d; ++l) {
      partial.Advance(1);
      for (ExtNodeId u : P) {
        if (u == q) continue;
        EXPECT_LE(full.Score(u),
                  partial.Score(u) + ytable.Bound(l, qi) + 1e-12)
            << "q=" << q.value() << " u=" << u.value() << " l=" << l;
      }
    }
  }
}

TEST_P(BoundsSweep, Lemma5YNotLooserThanX) {
  const double lambda = GetParam();
  Graph g = RandomGraph(40, 120, 33);
  DhtParams p = DhtParams::Lambda(lambda);
  const int d = 10;
  NodeSet P = Range("P", 0, 12);
  NodeSet Q = Range("Q", 20, 32);
  YBoundTable ytable(g, p, d, P, Q);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    for (int l = 0; l <= d; ++l) {
      EXPECT_LE(ytable.Bound(l, qi), p.XBound(l) + 1e-12)
          << "qi=" << qi << " l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, BoundsSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(BoundsTest, YBoundZeroAtFullDepth) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 5);
  NodeSet Q = Range("Q", 5, 10);
  YBoundTable ytable(g, p, 8, P, Q);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    EXPECT_DOUBLE_EQ(ytable.Bound(8, qi), 0.0);
  }
}

TEST(BoundsTest, YBoundMonotoneDecreasingInL) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.5);
  NodeSet P = Range("P", 0, 5);
  NodeSet Q = Range("Q", 5, 10);
  YBoundTable ytable(g, p, 8, P, Q);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    for (int l = 0; l < 8; ++l) {
      EXPECT_GE(ytable.Bound(l, qi), ytable.Bound(l + 1, qi) - 1e-15);
    }
  }
}

TEST(BoundsTest, YBoundUnreachableTargetIsZero) {
  // Node 3 of the directed path 0->1->2->3 can never walk back to P, but
  // more importantly an ISOLATED target gets S_i == 0 and thus Y == 0:
  // the bound proves immediately that nothing more can arrive.
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = std::move(b.Build()).value();  // nodes 3, 4 isolated
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 2);
  NodeSet Q("Q", {3, 4});
  YBoundTable ytable(g, p, 8, P, Q);
  for (std::size_t qi = 0; qi < 2; ++qi) {
    for (int l = 0; l <= 8; ++l) {
      EXPECT_DOUBLE_EQ(ytable.Bound(l, qi), 0.0);
    }
  }
}

TEST(BoundsTest, XUpperBoundFreeFunctionAgrees) {
  DhtParams p = DhtParams::Lambda(0.35);
  for (int l = 0; l < 6; ++l) {
    EXPECT_DOUBLE_EQ(XUpperBound(p, l), p.XBound(l));
  }
}

TEST(BoundsTest, YBoundChargesRealSweepCost) {
  // The construction sweep runs on the shared adaptive engine; its
  // edges_relaxed is what walk_steps gets charged. On a walk whose mass
  // stays inside a small component the sweep must cost far less than
  // the d dense passes the seed billed (d * |E|), and never more.
  Graph big = testing::RandomGraph(200, 800, 77);
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = 8;
  {
    YBoundTable ytable(big, p, d, testing::Range("P", 0, 10),
                       testing::Range("Q", 50, 60));
    EXPECT_GT(ytable.edges_relaxed(), 0);
    EXPECT_LE(ytable.edges_relaxed(),
              static_cast<int64_t>(d) * big.num_edges());
  }
  // Two isolated edges: the sweep from P = {0} touches almost nothing,
  // so a flat d * |E| would overcount wildly.
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 2).ok());
  Graph tiny = std::move(b.Build()).value();
  YBoundTable ytable(tiny, p, d, NodeSet("P", std::vector<NodeId>{0}),
                     NodeSet("Q", std::vector<NodeId>{1}));
  EXPECT_LT(ytable.edges_relaxed(),
            static_cast<int64_t>(d) * tiny.num_edges());
}

TEST(BoundsTest, YBoundCapsProbabilityAtOne) {
  // With many sources, sum_p S_i(p, q) can exceed 1; Theorem 1 clamps it.
  // On the star graph every leaf reaches the hub in one step, so
  // S_1(P, hub) = |P| but the Y bound must use min(., 1).
  Graph g = testing::StarGraph(12);
  DhtParams p = DhtParams::Lambda(0.5);
  NodeSet P = Range("P", 1, 11);  // 10 leaves
  NodeSet Q("Q", std::vector<NodeId>{0});
  const int d = 6;
  YBoundTable ytable(g, p, d, P, Q);
  // Uncapped would give alpha * (lambda * 10 + ...); capped is at most
  // alpha * sum_{i=1..d} lambda^i = X_0 truncated, which equals X_0 - X_d.
  EXPECT_LE(ytable.Bound(0, 0), p.XBound(0) - p.XBound(d) + 1e-12);
}

}  // namespace
}  // namespace dhtjoin
