/// \file tests/datasets_test.cc
/// \brief The synthetic dataset generators and perturbation tools.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datasets/dblp_like.h"
#include "datasets/perturb.h"
#include "datasets/planted_partition.h"
#include "datasets/preferential_attachment.h"
#include "datasets/yeast_like.h"
#include "datasets/youtube_like.h"
#include "graph/graph_builder.h"
#include "util/hash.h"

namespace dhtjoin::datasets {
namespace {

bool IsSymmetric(const Graph& g) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = g.OutEdges(IntNodeId(u));
    auto weights = g.OutWeights(IntNodeId(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!g.HasEdge(IntNodeId(row[i].to), IntNodeId(u))) return false;
      if (g.EdgeWeight(IntNodeId(row[i].to), IntNodeId(u)) != weights[i]) {
        return false;
      }
    }
  }
  return true;
}

// ----------------------------------------------------- planted partition

TEST(PlantedPartitionTest, MatchesRequestedScale) {
  PlantedPartitionConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_partitions = 5;
  cfg.num_edges = 1500;
  auto ds = GeneratePlantedPartition(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->graph.num_nodes(), 500);
  EXPECT_EQ(ds->graph.num_edges(), 3000);  // undirected, stored both ways
  EXPECT_EQ(ds->partitions.size(), 5u);
}

TEST(PlantedPartitionTest, PartitionsDisjointAndCovering) {
  auto ds = GeneratePlantedPartition(PlantedPartitionConfig{});
  ASSERT_TRUE(ds.ok());
  std::set<NodeId> all;
  std::size_t total = 0;
  for (const NodeSet& p : ds->partitions) {
    total += p.size();
    for (ExtNodeId u : p) all.insert(u.value());
  }
  EXPECT_EQ(total, all.size());  // disjoint
  EXPECT_EQ(all.size(), static_cast<std::size_t>(ds->graph.num_nodes()));
}

TEST(PlantedPartitionTest, DeterministicPerSeed) {
  PlantedPartitionConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 900;
  auto a = GeneratePlantedPartition(cfg);
  auto b = GeneratePlantedPartition(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->graph.num_edges(), b->graph.num_edges());
  for (NodeId u = 0; u < a->graph.num_nodes(); ++u) {
    auto ra = a->graph.OutEdges(IntNodeId(u));
    auto rb = b->graph.OutEdges(IntNodeId(u));
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].to, rb[i].to);
    }
  }
  cfg.seed = 999;
  auto c = GeneratePlantedPartition(cfg);
  ASSERT_TRUE(c.ok());
  bool identical = true;
  for (NodeId u = 0; u < a->graph.num_nodes() && identical; ++u) {
    auto ra = a->graph.OutEdges(IntNodeId(u));
    auto rc = c->graph.OutEdges(IntNodeId(u));
    if (ra.size() != rc.size()) identical = false;
  }
  EXPECT_FALSE(identical);  // different seed, different graph
}

TEST(PlantedPartitionTest, CommunityStructurePresent) {
  // Intra-partition edges must dominate: the generator targets 70% on
  // its non-closure samples, and the cross-biased triadic closure pulls
  // the realized fraction down a little. Uniform placement over 13
  // partitions would give only ~8%, so anything above one half is
  // unambiguous community structure.
  auto ds = GeneratePlantedPartition(PlantedPartitionConfig{});
  ASSERT_TRUE(ds.ok());
  std::vector<int> part(static_cast<std::size_t>(ds->graph.num_nodes()), -1);
  for (std::size_t i = 0; i < ds->partitions.size(); ++i) {
    for (ExtNodeId u : ds->partitions[i]) {
      part[static_cast<std::size_t>(u.value())] = static_cast<int>(i);
    }
  }
  int64_t intra = 0, total = 0;
  for (NodeId u = 0; u < ds->graph.num_nodes(); ++u) {
    for (const OutEdge& e : ds->graph.OutEdges(IntNodeId(u))) {
      ++total;
      if (part[static_cast<std::size_t>(u)] ==
          part[static_cast<std::size_t>(e.to)]) {
        ++intra;
      }
    }
  }
  double frac = static_cast<double>(intra) / static_cast<double>(total);
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.8);
}

TEST(PlantedPartitionTest, InfeasibleConfigsRejected) {
  PlantedPartitionConfig cfg;
  cfg.num_nodes = 10;
  cfg.num_partitions = 20;
  EXPECT_FALSE(GeneratePlantedPartition(cfg).ok());
  cfg = PlantedPartitionConfig{};
  cfg.num_nodes = 10;
  cfg.num_edges = 1000;  // denser than the simple-graph space
  EXPECT_FALSE(GeneratePlantedPartition(cfg).ok());
  cfg = PlantedPartitionConfig{};
  cfg.intra_fraction = 1.5;
  EXPECT_FALSE(GeneratePlantedPartition(cfg).ok());
}

// ----------------------------------------------- preferential attachment

TEST(PreferentialAttachmentTest, HeavyTailedDegrees) {
  PreferentialAttachmentConfig cfg;
  cfg.num_nodes = 2000;
  cfg.edges_per_node = 4;
  auto ds = GeneratePreferentialAttachment(cfg);
  ASSERT_TRUE(ds.ok());
  int64_t max_degree = 0;
  for (NodeId u = 0; u < ds->graph.num_nodes(); ++u) {
    max_degree = std::max(max_degree, ds->graph.Degree(IntNodeId(u)));
  }
  double mean = static_cast<double>(ds->graph.num_edges()) /
                static_cast<double>(ds->graph.num_nodes());
  // Hubs should tower over the mean (scale-free-ish tail).
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean);
}

TEST(PreferentialAttachmentTest, SymmetricWeightedEdges) {
  PreferentialAttachmentConfig cfg;
  cfg.num_nodes = 500;
  cfg.weighted = true;
  auto ds = GeneratePreferentialAttachment(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(IsSymmetric(ds->graph));
  for (double w : ds->edge_weights) EXPECT_GE(w, 1.0);
}

TEST(PreferentialAttachmentTest, EdgeListAlignedWithGraph) {
  PreferentialAttachmentConfig cfg;
  cfg.num_nodes = 300;
  auto ds = GeneratePreferentialAttachment(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->edge_list.size(), ds->edge_weights.size());
  EXPECT_EQ(static_cast<int64_t>(ds->edge_list.size()) * 2,
            ds->graph.num_edges());
  for (auto [u, v] : ds->edge_list) {
    EXPECT_TRUE(ds->graph.HasEdge(IntNodeId(u), IntNodeId(v)));
    EXPECT_LE(u, v);
  }
}

TEST(PreferentialAttachmentTest, CommunitiesCoverAllNodes) {
  auto ds = GeneratePreferentialAttachment(PreferentialAttachmentConfig{
      .num_nodes = 400, .edges_per_node = 3, .num_communities = 6});
  ASSERT_TRUE(ds.ok());
  std::size_t total = 0;
  for (const NodeSet& c : ds->communities) total += c.size();
  EXPECT_EQ(total, 400u);
}

// --------------------------------------------------------------- wrappers

TEST(YeastLikeTest, PaperScaleAndPartitions) {
  auto ds = GenerateYeastLike();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->graph.num_nodes(), 2400);
  EXPECT_EQ(ds->graph.num_edges(), 14400);  // 7200 undirected
  EXPECT_EQ(ds->partitions.size(), 13u);
  EXPECT_TRUE(IsSymmetric(ds->graph));
  // The paper's named partitions exist, and 3-U / 8-D are the largest.
  auto u3 = ds->Partition("3-U");
  auto d8 = ds->Partition("8-D");
  auto f5 = ds->Partition("5-F");
  ASSERT_TRUE(u3.ok());
  ASSERT_TRUE(d8.ok());
  ASSERT_TRUE(f5.ok());
  for (const NodeSet& p : ds->partitions) {
    EXPECT_LE(p.size(), u3->size());
  }
  EXPECT_FALSE(ds->Partition("nope").ok());
}

TEST(DblpLikeTest, AreasWeightsAndYears) {
  DblpLikeConfig cfg;
  cfg.num_authors = 2000;
  auto ds = GenerateDblpLike(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->areas.size(), 10u);
  ASSERT_TRUE(ds->Area("DB").ok());
  ASSERT_TRUE(ds->Area("AI").ok());
  ASSERT_TRUE(ds->Area("SYS").ok());
  EXPECT_FALSE(ds->Area("XX").ok());
  ASSERT_EQ(ds->edge_year.size(), ds->edge_list.size());
  for (int y : ds->edge_year) {
    EXPECT_GE(y, cfg.first_year);
    EXPECT_LE(y, cfg.last_year);
  }
  // Co-authorship weights are positive integers.
  for (NodeId u = 0; u < ds->graph.num_nodes(); ++u) {
    for (double w : ds->graph.OutWeights(IntNodeId(u))) {
      EXPECT_GE(w, 1.0);
    }
  }
}

TEST(DblpLikeTest, SnapshotIsSubgraph) {
  DblpLikeConfig cfg;
  cfg.num_authors = 1500;
  auto ds = GenerateDblpLike(cfg);
  ASSERT_TRUE(ds.ok());
  auto snap = ds->SnapshotBefore(2010);
  ASSERT_TRUE(snap.ok());
  EXPECT_LT(snap->num_edges(), ds->graph.num_edges());
  EXPECT_GT(snap->num_edges(), 0);
  for (NodeId u = 0; u < snap->num_nodes(); ++u) {
    for (const OutEdge& e : snap->OutEdges(IntNodeId(u))) {
      EXPECT_TRUE(ds->graph.HasEdge(IntNodeId(u), IntNodeId(e.to)));
    }
  }
  // Recent years hold the bulk of the edges (growth curve).
  auto early = ds->SnapshotBefore(2000);
  ASSERT_TRUE(early.ok());
  EXPECT_LT(early->num_edges(), snap->num_edges());
}

TEST(YouTubeLikeTest, GroupsOverlapAndScale) {
  YouTubeLikeConfig cfg;
  cfg.num_users = 3000;
  cfg.num_groups = 20;
  cfg.max_group_size = 150;
  auto ds = GenerateYouTubeLike(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->groups.size(), 20u);
  ASSERT_TRUE(ds->Group(1).ok());
  ASSERT_TRUE(ds->Group(5).ok());
  EXPECT_FALSE(ds->Group(999).ok());
  // Zipf sizes: group 1 biggest.
  EXPECT_GE(ds->Group(1)->size(), ds->Group(10)->size());
  for (const NodeSet& grp : ds->groups) {
    EXPECT_GE(grp.size(), 8u);
    for (ExtNodeId u : grp) {
      EXPECT_TRUE(ds->graph.ContainsNode(u));
    }
  }
}

// ---------------------------------------------------------------- perturb

TEST(PerturbTest, RemoveInterSetEdgesHalves) {
  auto ds = GenerateYeastLike(YeastLikeConfig{.num_nodes = 800,
                                              .num_edges = 2400,
                                              .seed = 3});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  auto removed = RemoveInterSetEdges(ds->graph, P, Q, 0.5, 42);
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(removed->removed.size(), 0u);
  for (auto [u, v] : removed->removed) {
    EXPECT_TRUE(ds->graph.HasEdge(IntNodeId(u), IntNodeId(v)));
    EXPECT_FALSE(removed->graph.HasEdge(IntNodeId(u), IntNodeId(v)));
    EXPECT_FALSE(removed->graph.HasEdge(IntNodeId(v), IntNodeId(u)));
  }
  // Non-removed edges intact.
  EXPECT_EQ(removed->graph.num_edges(),
            ds->graph.num_edges() -
                2 * static_cast<int64_t>(removed->removed.size()));
}

TEST(PerturbTest, RemoveFractionBounds) {
  auto ds = GenerateYeastLike(YeastLikeConfig{.num_nodes = 800,
                                              .num_edges = 2400,
                                              .seed = 4});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  auto none = RemoveInterSetEdges(ds->graph, P, Q, 0.0, 1);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->removed.empty());
  auto all = RemoveInterSetEdges(ds->graph, P, Q, 1.0, 1);
  ASSERT_TRUE(all.ok());
  // Every inter-set edge gone.
  for (ExtNodeId p : P) {
    for (const OutEdge& e :
         all->graph.OutEdges(all->graph.ToInternal(p))) {
      EXPECT_FALSE(Q.Contains(ExtNodeId(e.to)));
    }
  }
  EXPECT_FALSE(RemoveInterSetEdges(ds->graph, P, Q, 1.5, 1).ok());
}

TEST(PerturbTest, FindTrianglesCorrect) {
  // Hand-built graph with exactly two (P,Q,R) triangles.
  GraphBuilder b(9, true);
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 6).ok());
  ASSERT_TRUE(b.AddEdge(0, 6).ok());  // triangle (0, 3, 6)
  ASSERT_TRUE(b.AddEdge(1, 4).ok());
  ASSERT_TRUE(b.AddEdge(4, 7).ok());
  ASSERT_TRUE(b.AddEdge(1, 7).ok());  // triangle (1, 4, 7)
  ASSERT_TRUE(b.AddEdge(2, 5).ok());
  ASSERT_TRUE(b.AddEdge(5, 8).ok());  // (2, 5, 8) missing one side
  Graph g = std::move(b.Build()).value();
  NodeSet P("P", {0, 1, 2});
  NodeSet Q("Q", {3, 4, 5});
  NodeSet R("R", {6, 7, 8});
  auto tris = FindTriangles(g, P, Q, R);
  ASSERT_EQ(tris.size(), 2u);
  std::set<std::tuple<NodeId, NodeId, NodeId>> found;
  for (const Triangle& t : tris) found.insert({t.p, t.q, t.r});
  EXPECT_TRUE(found.contains({0, 3, 6}));
  EXPECT_TRUE(found.contains({1, 4, 7}));
}

TEST(PerturbTest, RemoveCliqueEdgesBreaksEveryClique) {
  auto ds = GenerateYeastLike(YeastLikeConfig{.num_nodes = 600,
                                              .num_edges = 3000,
                                              .seed = 5});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  const NodeSet& R = ds->partitions[2];
  auto before = FindTriangles(ds->graph, P, Q, R);
  auto result = RemoveCliqueEdges(ds->graph, P, Q, R, 77);
  ASSERT_TRUE(result.ok());
  if (!before.empty()) {
    EXPECT_GT(result->removed.size(), 0u);
  }
  auto after = FindTriangles(result->graph, P, Q, R);
  EXPECT_TRUE(after.empty());
}

TEST(PerturbTest, RemoveEdgesRebuildsExactly) {
  Graph g = std::move(GraphBuilder(4, true).Build()).value();
  // Empty graph: removing nothing keeps nothing.
  auto same = RemoveEdges(g, {});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->num_edges(), 0);
}

}  // namespace
}  // namespace dhtjoin::datasets
