// Fixture: float-accum must trip on float declarations in engine code
// (pseudo-path src/...) and honor suppressions.

double Accumulate(const double* xs, int n) {
  float total = 0.0f;  // TRIP: float accumulator
  for (int i = 0; i < n; ++i) {
    total += static_cast<float>(xs[i]);  // TRIP: float narrowing
  }
  // dhtlint: allow(float-accum): telemetry gauge, never feeds a score
  float gauge = total;  // suppressed
  return static_cast<double>(gauge);
}
