// Fixture: mutable-static must trip on mutable statics and
// thread_local in hot paths (pseudo-path src/dht/...), skip
// const/constexpr/static functions, and honor suppressions.

static int call_count = 0;              // TRIP: mutable static
thread_local double scratch = 0.0;      // TRIP: thread_local
static const int kLimit = 8;            // clean: const
static constexpr double kBeta = 0.1;    // clean: constexpr
static double Helper(double x) {        // clean: static function
  return x * kBeta;
}
// dhtlint: allow(mutable-static): debug counter, never read by scores
static int debug_ticks = 0;  // suppressed

double Touch(double x) {
  ++call_count;
  ++debug_ticks;
  scratch = x;
  return Helper(scratch) + kLimit;
}
