// Fixture: unordered-iter must trip on hash-order iteration and honor
// a reasoned suppression. Linted under the pseudo-path src/dht/fix.cc.
#include <unordered_map>
#include <unordered_set>

double SumHashOrder() {
  std::unordered_map<int, double> scores;
  double total = 0.0;
  for (const auto& [node, score] : scores) {  // TRIP: range-for
    total += score;
  }
  std::unordered_set<int> seen;
  auto it = seen.begin();  // TRIP: iterator walk
  (void)it;
  // dhtlint: allow(unordered-iter): max-reduction is order-insensitive
  for (const auto& [node, score] : scores) {  // suppressed
    if (score > total) total = score;
  }
  return total;
}
