// Fixture: raw-id-param must trip on bare NodeId/int32_t node
// parameters in engine headers (pseudo-path src/.../x.h) and honor
// both line and file suppressions (the file-level form is exercised by
// the test rewriting this header's directive).
#include <cstdint>

using NodeId = int32_t;

double ScoreOf(NodeId u);                    // TRIP
void Observe(int32_t node, double score);    // TRIP
// dhtlint: allow(raw-id-param): documented raw interior below the remap
double Mass(NodeId u);                       // suppressed
void Typed(double score);                    // clean: no id param

inline double SumAll(int n) {
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) {           // clean: loop init
    total += ScoreOf(u);
  }
  auto less = [](NodeId a, NodeId b) { return a < b; };  // clean: lambda
  (void)less;
  return total;
}
