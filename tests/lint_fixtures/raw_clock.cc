// Fixture for the raw-clock rule: raw chrono clock reads in engine
// code must flow through obs::Clock instead.
#include <chrono>

namespace fixture {

int64_t BadSteady() {
  // trips: steady_clock outside obs/clock.h
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t BadHighRes() {
  // trips: high_resolution_clock
  auto t = std::chrono::high_resolution_clock::now();
  return t.time_since_epoch().count();
}

// dhtlint: allow(raw-clock): measurement-only scaffolding in this test
int64_t SuppressedSteady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

const char* NotAClock() {
  return "steady_clock inside a string literal must not count";
}

}  // namespace fixture
