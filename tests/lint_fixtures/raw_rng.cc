// Fixture: raw-rng must trip on every raw randomness / wall-clock
// source and honor suppressions. Mentions of rand() in comments or
// strings must NOT trip (the scanner strips both).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned BadSeeds() {
  unsigned a = static_cast<unsigned>(rand());       // TRIP
  srand(42);                                        // TRIP
  std::random_device rd;                            // TRIP
  unsigned b = static_cast<unsigned>(time(nullptr));  // TRIP
  auto now = std::chrono::system_clock::now();      // TRIP
  (void)now;
  const char* doc = "call rand() for chaos";  // string: no trip
  (void)doc;
  // dhtlint: allow(raw-rng): fixture demonstrates a reasoned waiver
  unsigned c = static_cast<unsigned>(rand());  // suppressed
  return a + b + c + rd();
}
