// Fixture: deterministic engine code that must produce ZERO findings —
// sorted containers, double accumulation, Rng-style seeding, no hidden
// state. Comments mentioning rand() or float must not trip.
#include <map>
#include <vector>

double SumSorted(const std::map<int, double>& scores) {
  double total = 0.0;  // double, not float (see float-accum rule)
  for (const auto& [node, score] : scores) {
    total += score;
  }
  return total;
}
