// Fixture: a suppression without a reason is itself a finding
// (bad-suppression), and does NOT waive the underlying hit.

// dhtlint: allow(float-accum)
float no_reason = 0.0f;  // still trips float-accum
