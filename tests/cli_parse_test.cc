/// \file tests/cli_parse_test.cc
/// \brief Unit tests for the CLI argument/spec parsers.

#include <gtest/gtest.h>

#include "tools/cli_parse.h"

namespace dhtjoin::cli {
namespace {

TEST(ParseArgsTest, SubcommandAndOptions) {
  const char* argv[] = {"dhtjoin_cli", "join2", "--graph", "g.txt",
                        "--k",         "10",    "--verbose"};
  auto parsed = ParseArgs(7, argv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->command, "join2");
  EXPECT_EQ(parsed->Get("graph", ""), "g.txt");
  EXPECT_EQ(parsed->Get("k", ""), "10");
  EXPECT_TRUE(parsed->Has("verbose"));
  EXPECT_EQ(parsed->Get("missing", "dflt"), "dflt");
}

TEST(ParseArgsTest, MissingSubcommandRejected) {
  const char* argv[] = {"dhtjoin_cli"};
  EXPECT_FALSE(ParseArgs(1, argv).ok());
}

TEST(ParseArgsTest, BarewordOptionRejected) {
  const char* argv[] = {"dhtjoin_cli", "join2", "oops"};
  EXPECT_FALSE(ParseArgs(3, argv).ok());
}

TEST(ParseMeasureTest, AllMeasures) {
  auto lam = ParseMeasure("dhtlambda");
  ASSERT_TRUE(lam.ok());
  EXPECT_DOUBLE_EQ(lam->lambda, 0.2);
  EXPECT_TRUE(lam->first_hit);

  auto lam4 = ParseMeasure("dhtlambda:0.4");
  ASSERT_TRUE(lam4.ok());
  EXPECT_DOUBLE_EQ(lam4->lambda, 0.4);

  auto e = ParseMeasure("dhte");
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->beta, 0.0);

  auto ppr = ParseMeasure("ppr:0.9");
  ASSERT_TRUE(ppr.ok());
  EXPECT_FALSE(ppr->first_hit);
  EXPECT_DOUBLE_EQ(ppr->lambda, 0.9);
}

TEST(ParseMeasureTest, InvalidSpecsRejected) {
  EXPECT_FALSE(ParseMeasure("simrank").ok());
  EXPECT_FALSE(ParseMeasure("dhtlambda:1.5").ok());
  EXPECT_FALSE(ParseMeasure("dhtlambda:zero").ok());
  EXPECT_FALSE(ParseMeasure("dhte:0.5").ok());
  EXPECT_FALSE(ParseMeasure("ppr:0").ok());
}

TEST(ParseQuerySpecTest, DirectedAndBidirectional) {
  auto q = ParseQuerySpec("DB>AI,AI-SYS");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 2u);
  EXPECT_EQ((*q)[0].from, "DB");
  EXPECT_EQ((*q)[0].to, "AI");
  EXPECT_FALSE((*q)[0].bidirectional);
  EXPECT_EQ((*q)[1].from, "AI");
  EXPECT_EQ((*q)[1].to, "SYS");
  EXPECT_TRUE((*q)[1].bidirectional);
}

TEST(ParseQuerySpecTest, ArrowTakesPrecedenceForDashedNames) {
  // Set names containing '-' work with '>' edges.
  auto q = ParseQuerySpec("3-U>8-D");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)[0].from, "3-U");
  EXPECT_EQ((*q)[0].to, "8-D");
}

TEST(ParseQuerySpecTest, InvalidSpecsRejected) {
  EXPECT_FALSE(ParseQuerySpec("").ok());
  EXPECT_FALSE(ParseQuerySpec("AB").ok());
  EXPECT_FALSE(ParseQuerySpec(">B").ok());
  EXPECT_FALSE(ParseQuerySpec("A>").ok());
}

TEST(ParsePositiveIntTest, Bounds) {
  EXPECT_EQ(ParsePositiveInt("42", "k").value(), 42);
  EXPECT_FALSE(ParsePositiveInt("0", "k").ok());
  EXPECT_FALSE(ParsePositiveInt("-3", "k").ok());
  EXPECT_FALSE(ParsePositiveInt("ten", "k").ok());
  EXPECT_FALSE(ParsePositiveInt("10x", "k").ok());
}

TEST(ParseNodeIdTest, AcceptsInRangeRejectsNegativeAndOutOfRange) {
  auto id = ParseNodeId("7", "left", /*num_nodes=*/10);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, ExtNodeId(7));  // typed at the parse boundary
  EXPECT_EQ(ParseNodeId("0", "left", 10)->value(), 0);
  EXPECT_EQ(ParseNodeId("9", "left", 10)->value(), 9);

  Status neg = ParseNodeId("-1", "left", 10).status();
  EXPECT_EQ(neg.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(neg.message().find("non-negative"), std::string::npos);

  Status oob = ParseNodeId("10", "left", 10).status();
  EXPECT_EQ(oob.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(oob.message().find("out of range"), std::string::npos);

  EXPECT_FALSE(ParseNodeId("", "left", 10).ok());
  EXPECT_FALSE(ParseNodeId("3x", "left", 10).ok());
  EXPECT_FALSE(ParseNodeId("seven", "left", 10).ok());
}

TEST(ParseNodeIdTest, UnboundedWhenGraphSizeUnknown) {
  // num_nodes < 0 disables the upper bound (id validated later).
  EXPECT_EQ(ParseNodeId("123456", "q", -1)->value(), 123456);
  EXPECT_FALSE(ParseNodeId("-2", "q", -1).ok());
}

TEST(ParseNodeListTest, ParsesCommaListWithPerIdValidation) {
  auto ids = ParseNodeList("3,1,7", "inline set", 10);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  EXPECT_EQ((*ids)[0], ExtNodeId(3));
  EXPECT_EQ((*ids)[2], ExtNodeId(7));

  EXPECT_FALSE(ParseNodeList("3,99", "inline set", 10).ok());  // range
  EXPECT_FALSE(ParseNodeList("3,-1", "inline set", 10).ok());  // negative
  EXPECT_FALSE(ParseNodeList("", "inline set", 10).ok());      // empty
  EXPECT_FALSE(ParseNodeList(",,", "inline set", 10).ok());    // empty
}

}  // namespace
}  // namespace dhtjoin::cli
