/// \file tests/rankjoin_test.cc
/// \brief Aggregates, candidate buffers, and the PBRJ rank-join engine
/// (tested against exhaustive enumeration over the same input lists).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/pair_streams.h"
#include "graph/graph_builder.h"
#include "rankjoin/aggregate.h"
#include "rankjoin/candidate_buffer.h"
#include "rankjoin/pbrj.h"
#include "util/rng.h"

namespace dhtjoin {
namespace {

// -------------------------------------------------------------- Aggregate

TEST(AggregateTest, SumAndMin) {
  SumAggregate sum;
  MinAggregate min;
  std::vector<double> xs = {-0.5, -1.0, -0.25};
  EXPECT_DOUBLE_EQ(sum.Apply(xs), -1.75);
  EXPECT_DOUBLE_EQ(min.Apply(xs), -1.0);
  EXPECT_EQ(sum.Name(), "SUM");
  EXPECT_EQ(min.Name(), "MIN");
}

TEST(AggregateTest, HandleInfinity) {
  SumAggregate sum;
  MinAggregate min;
  double inf = std::numeric_limits<double>::infinity();
  std::vector<double> xs = {1.0, -inf};
  EXPECT_EQ(sum.Apply(xs), -inf);
  EXPECT_EQ(min.Apply(xs), -inf);
}

// -------------------------------------------------------- CandidateBuffer

TEST(CandidateBufferTest, InsertAndLookup) {
  CandidateBuffer buf;
  buf.Insert(1, 2, -0.5);
  buf.Insert(1, 3, -0.6);
  buf.Insert(4, 2, -0.7);
  EXPECT_EQ(buf.size(), 3u);
  ASSERT_TRUE(buf.Lookup(1, 2).has_value());
  EXPECT_DOUBLE_EQ(*buf.Lookup(1, 2), -0.5);
  EXPECT_FALSE(buf.Lookup(2, 1).has_value());
  EXPECT_EQ(buf.ByLeft(1).size(), 2u);
  EXPECT_EQ(buf.ByRight(2).size(), 2u);
  EXPECT_EQ(buf.ByLeft(99).size(), 0u);
  EXPECT_EQ(buf.All().size(), 3u);
}

// ------------------------------------------------------------------ PBRJ

/// Exhaustive join over full lists: the PBRJ ground truth.
std::vector<TupleAnswer> BruteForceJoin(
    int num_attrs, const std::vector<JoinEdge>& edges,
    const std::vector<std::vector<ScoredPair>>& lists, const Aggregate& f,
    std::size_t k) {
  std::vector<TupleAnswer> all;
  std::vector<NodeId> tuple(static_cast<std::size_t>(num_attrs),
                            kInvalidNode);
  auto rec = [&](auto&& self, std::size_t e,
                 std::vector<double>& scores) -> void {
    if (e == edges.size()) {
      TupleAnswer a;
      a.nodes = tuple;
      a.edge_scores = scores;
      a.f = f.Apply(scores);
      all.push_back(a);
      return;
    }
    auto la = static_cast<std::size_t>(edges[e].left);
    auto ra = static_cast<std::size_t>(edges[e].right);
    for (const ScoredPair& sp : lists[e]) {
      bool ok_l = tuple[la] == kInvalidNode || tuple[la] == sp.p;
      bool ok_r = tuple[ra] == kInvalidNode || tuple[ra] == sp.q;
      if (!ok_l || !ok_r) continue;
      NodeId saved_l = tuple[la], saved_r = tuple[ra];
      tuple[la] = sp.p;
      tuple[ra] = sp.q;
      scores[e] = sp.score;
      self(self, e + 1, scores);
      tuple[la] = saved_l;
      tuple[ra] = saved_r;
    }
  };
  std::vector<double> scores(edges.size());
  rec(rec, 0, scores);
  std::sort(all.begin(), all.end(), TupleAnswerGreater);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<ScoredPair> RandomList(Rng& rng, NodeId left_base,
                                   NodeId right_base, int lefts, int rights,
                                   double keep) {
  std::vector<ScoredPair> list;
  for (NodeId p = left_base; p < left_base + lefts; ++p) {
    for (NodeId q = right_base; q < right_base + rights; ++q) {
      if (!rng.Chance(keep)) continue;
      list.push_back(ScoredPair{p, q, -rng.NextDouble()});
    }
  }
  std::sort(list.begin(), list.end(), ScoredPairGreater);
  return list;
}

struct PbrjCase {
  uint64_t seed;
  std::size_t k;
  bool use_min;
  double keep;  // list density
};

class PbrjSweep : public ::testing::TestWithParam<PbrjCase> {};

TEST_P(PbrjSweep, ChainQueryMatchesBruteForce) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  // Attributes 0-1-2 chained by 2 edges; node ranges disjoint per attr.
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
  std::vector<std::vector<ScoredPair>> lists = {
      RandomList(rng, 0, 100, 6, 6, c.keep),
      RandomList(rng, 100, 200, 6, 6, c.keep)};
  SumAggregate sum;
  MinAggregate min;
  const Aggregate& f = c.use_min ? static_cast<const Aggregate&>(min)
                                 : static_cast<const Aggregate&>(sum);
  auto want = BruteForceJoin(3, edges, lists, f, c.k);

  VectorPairStream s0(lists[0]), s1(lists[1]);
  Pbrj pbrj(3, edges, &f, c.k);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR((*got)[i].f, want[i].f, 1e-12) << "rank " << i;
  }
}

TEST_P(PbrjSweep, TriangleQueryMatchesBruteForce) {
  const auto& c = GetParam();
  Rng rng(c.seed ^ 0xabcdef);
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<std::vector<ScoredPair>> lists = {
      RandomList(rng, 0, 100, 5, 5, c.keep),
      RandomList(rng, 100, 200, 5, 5, c.keep),
      RandomList(rng, 0, 200, 5, 5, c.keep)};
  MinAggregate f;
  auto want = BruteForceJoin(3, edges, lists, f, c.k);
  VectorPairStream s0(lists[0]), s1(lists[1]), s2(lists[2]);
  Pbrj pbrj(3, edges, &f, c.k);
  auto got = pbrj.Run({&s0, &s1, &s2});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR((*got)[i].f, want[i].f, 1e-12) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PbrjSweep,
                         ::testing::Values(PbrjCase{1, 1, true, 0.8},
                                           PbrjCase{2, 5, true, 0.5},
                                           PbrjCase{3, 10, false, 0.8},
                                           PbrjCase{4, 50, false, 0.3},
                                           PbrjCase{5, 1000, true, 0.6},
                                           PbrjCase{6, 3, true, 1.0}));

TEST(PbrjTest, BidirectionalEdgesBetweenSameSets) {
  // Two opposite edges between attrs 0 and 1 (paper footnote 2); a tuple
  // needs BOTH pairs present.
  std::vector<JoinEdge> edges = {{0, 1}, {1, 0}};
  std::vector<ScoredPair> fwd = {{1, 10, -0.2}, {2, 11, -0.5}};
  std::vector<ScoredPair> bwd = {{10, 1, -0.3}};  // only (10,1) back pair
  MinAggregate f;
  VectorPairStream s0(fwd), s1(bwd);
  Pbrj pbrj(2, edges, &f, 10);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);  // (2, 11) has no reverse pair
  EXPECT_EQ((*got)[0].nodes, (std::vector<NodeId>{1, 10}));
  EXPECT_DOUBLE_EQ((*got)[0].f, -0.3);
}

TEST(PbrjTest, EmptyStreamMeansNoTuples) {
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
  std::vector<ScoredPair> nonempty = {{1, 10, -0.2}};
  MinAggregate f;
  VectorPairStream s0(nonempty), s1({});
  Pbrj pbrj(3, edges, &f, 5);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(PbrjTest, DisconnectedQueryGraphIsCartesian) {
  // Edges (0,1) and (2,3): no shared attribute. Tuples are the cross
  // product of the two lists.
  std::vector<JoinEdge> edges = {{0, 1}, {2, 3}};
  std::vector<ScoredPair> l0 = {{1, 10, -0.1}, {2, 11, -0.4}};
  std::vector<ScoredPair> l1 = {{20, 30, -0.2}, {21, 31, -0.3}};
  SumAggregate f;
  VectorPairStream s0(l0), s1(l1);
  Pbrj pbrj(4, edges, &f, 10);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 4u);
  EXPECT_NEAR((*got)[0].f, -0.3, 1e-12);  // best + best
}

TEST(PbrjTest, WrongStreamCountRejected) {
  std::vector<JoinEdge> edges = {{0, 1}};
  MinAggregate f;
  Pbrj pbrj(2, edges, &f, 5);
  EXPECT_FALSE(pbrj.Run({}).ok());
  VectorPairStream s({});
  EXPECT_FALSE(pbrj.Run({&s, &s}).ok());
  EXPECT_FALSE(pbrj.Run({nullptr}).ok());
}

TEST(PbrjTest, EarlyTerminationPullsLessThanEverything) {
  // With k=1 and clearly separated scores the corner bound should stop
  // the join long before both lists are drained.
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
  std::vector<ScoredPair> l0, l1;
  for (int i = 0; i < 200; ++i) {
    l0.push_back({static_cast<NodeId>(i), static_cast<NodeId>(1000 + i),
                  -0.001 * i});
    l1.push_back({static_cast<NodeId>(1000 + i), static_cast<NodeId>(2000 + i),
                  -0.001 * i});
  }
  MinAggregate f;
  VectorPairStream s0(l0), s1(l1);
  Pbrj pbrj(3, edges, &f, 1);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_DOUBLE_EQ((*got)[0].f, 0.0);
  const auto& pulls = pbrj.stats().pulls_per_edge;
  EXPECT_LT(pulls[0] + pulls[1], 50);  // nowhere near 400
}

TEST(PbrjTest, AdaptivePullingAgreesWithRoundRobin) {
  // HRJN* (adaptive) must return the same top-k as plain HRJN — only
  // the pull order differs.
  Rng rng(88);
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<std::vector<ScoredPair>> lists = {
      RandomList(rng, 0, 100, 6, 6, 0.6),
      RandomList(rng, 100, 200, 6, 6, 0.6),
      RandomList(rng, 0, 200, 6, 6, 0.6)};
  MinAggregate f;
  auto run = [&](PullStrategy strategy) {
    VectorPairStream s0(lists[0]), s1(lists[1]), s2(lists[2]);
    Pbrj pbrj(3, edges, &f, 10, Pbrj::Options{strategy});
    auto got = pbrj.Run({&s0, &s1, &s2});
    EXPECT_TRUE(got.ok());
    return std::move(got).value();
  };
  auto rr = run(PullStrategy::kRoundRobin);
  auto ad = run(PullStrategy::kAdaptive);
  ASSERT_EQ(rr.size(), ad.size());
  for (std::size_t i = 0; i < rr.size(); ++i) {
    EXPECT_NEAR(rr[i].f, ad[i].f, 1e-12) << "rank " << i;
  }
}

TEST(PbrjTest, AdaptivePullingNeverPullsMore) {
  // On strongly skewed streams the adaptive strategy should consume no
  // more pairs in total than round-robin (it only pulls the stream that
  // can lower tau).
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
  std::vector<ScoredPair> fast, slow;
  for (int i = 0; i < 300; ++i) {
    fast.push_back({static_cast<NodeId>(i), static_cast<NodeId>(1000 + i),
                    -0.0001 * i});  // scores decay slowly
    slow.push_back({static_cast<NodeId>(1000 + i),
                    static_cast<NodeId>(2000 + i), -0.1 * i});  // fast decay
  }
  MinAggregate f;
  auto total_pulls = [&](PullStrategy strategy) {
    VectorPairStream s0(fast), s1(slow);
    Pbrj pbrj(3, edges, &f, 3, Pbrj::Options{strategy});
    EXPECT_TRUE(pbrj.Run({&s0, &s1}).ok());
    return pbrj.stats().pulls_per_edge[0] + pbrj.stats().pulls_per_edge[1];
  };
  EXPECT_LE(total_pulls(PullStrategy::kAdaptive),
            total_pulls(PullStrategy::kRoundRobin));
}

TEST(PbrjTest, TupleEdgeScoresConsistentWithF) {
  Rng rng(77);
  std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
  std::vector<std::vector<ScoredPair>> lists = {
      RandomList(rng, 0, 100, 5, 5, 0.7),
      RandomList(rng, 100, 200, 5, 5, 0.7)};
  SumAggregate f;
  VectorPairStream s0(lists[0]), s1(lists[1]);
  Pbrj pbrj(3, edges, &f, 20);
  auto got = pbrj.Run({&s0, &s1});
  ASSERT_TRUE(got.ok());
  for (const TupleAnswer& t : *got) {
    EXPECT_NEAR(t.f, t.edge_scores[0] + t.edge_scores[1], 1e-12);
  }
}

// ------------------------------------------------------------ PJ streams

TEST(RerunPairStreamTest, MatchesDirectJoinOrder) {
  Graph g;
  {
    GraphBuilder b(20, true);
    Rng rng(55);
    for (int i = 0; i < 50; ++i) {
      auto u = static_cast<NodeId>(rng.Below(20));
      auto v = static_cast<NodeId>(rng.Below(20));
      if (u != v) (void)b.AddEdge(u, v, 1.0);
    }
    g = std::move(b.Build()).value();
  }
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P("P", {0, 1, 2, 3, 4, 5, 6, 7});
  NodeSet Q("Q", {12, 13, 14, 15, 16, 17, 18, 19});
  BIdjJoin direct;
  auto want = direct.Run(g, p, 8, P, Q, 100);
  ASSERT_TRUE(want.ok());

  RerunPairStream stream(g, p, 8, P, Q, /*m=*/3, UpperBoundKind::kY);
  ASSERT_TRUE(stream.status().ok());
  std::vector<ScoredPair> got;
  while (auto next = stream.Next()) got.push_back(*next);
  ASSERT_EQ(got.size(), want->size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, (*want)[i].score, 1e-9);
  }
  // Going past m = 3 required re-running joins from scratch.
  EXPECT_GT(stream.stats().reruns, 0);
}

}  // namespace
}  // namespace dhtjoin
