/// \file tests/dhtlint_test.cc
/// \brief dhtlint rule coverage: every rule must trip on its fixture,
/// honor reasoned suppressions, reject reasonless ones, scope by path,
/// and survive in the JSON report — so the linter cannot silently rot.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/dhtlint_lib.h"

namespace dhtjoin::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(DHTJOIN_LINT_FIXTURE_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int CountRule(const LintResult& r, const std::string& rule,
              bool suppressed) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule && f.suppressed == suppressed) ++n;
  }
  return n;
}

TEST(DhtLintTest, UnorderedIterTripsAndSuppresses) {
  LintResult r =
      LintSource("src/dht/fixture.cc", ReadFixture("unordered_iter.cc"));
  EXPECT_EQ(CountRule(r, "unordered-iter", /*suppressed=*/false), 2);
  EXPECT_EQ(CountRule(r, "unordered-iter", /*suppressed=*/true), 1);
  for (const Finding& f : r.findings) {
    if (f.suppressed) {
      EXPECT_EQ(f.reason, "max-reduction is order-insensitive");
    }
  }
}

TEST(DhtLintTest, UnorderedIterScopedToEngineSources) {
  // The same content outside src/ (e.g. a tool) is not engine code.
  LintResult r =
      LintSource("tools/fixture.cc", ReadFixture("unordered_iter.cc"));
  EXPECT_EQ(CountRule(r, "unordered-iter", false), 0);
}

TEST(DhtLintTest, RawRngTripsEverySourceAndSuppresses) {
  LintResult r = LintSource("src/dht/fixture.cc", ReadFixture("raw_rng.cc"));
  // rand, srand, random_device, time(nullptr), system_clock = 5 trips;
  // the string-literal rand() must not count.
  EXPECT_EQ(CountRule(r, "raw-rng", false), 5);
  EXPECT_EQ(CountRule(r, "raw-rng", true), 1);
}

TEST(DhtLintTest, RawRngAllowlistsRngTimerAndBench) {
  const std::string content = ReadFixture("raw_rng.cc");
  EXPECT_EQ(LintSource("src/util/rng.h", content).NumUnsuppressed(), 0);
  EXPECT_EQ(LintSource("src/util/timer.cc", content).NumUnsuppressed(), 0);
  EXPECT_EQ(LintSource("bench/bench_x.cc", content).NumUnsuppressed(), 0);
  EXPECT_GT(LintSource("src/serve/session.cc", content).NumUnsuppressed(),
            0);
}

TEST(DhtLintTest, RawClockTripsAndSuppresses) {
  LintResult r =
      LintSource("src/dht/fixture.cc", ReadFixture("raw_clock.cc"));
  // steady_clock + high_resolution_clock trip; the string literal and
  // the reasoned allow do not count as unsuppressed.
  EXPECT_EQ(CountRule(r, "raw-clock", /*suppressed=*/false), 2);
  EXPECT_EQ(CountRule(r, "raw-clock", /*suppressed=*/true), 1);
}

TEST(DhtLintTest, RawClockAllowlistsObsClockAndNonEngineCode) {
  const std::string content = ReadFixture("raw_clock.cc");
  // The injectable-clock implementation is THE sanctioned raw read.
  EXPECT_EQ(CountRule(LintSource("src/obs/clock.h", content), "raw-clock",
                      false),
            0);
  // Outside src/ (tools, benches) wall-clock reads are fine.
  EXPECT_EQ(CountRule(LintSource("bench/bench_x.cc", content), "raw-clock",
                      false),
            0);
  EXPECT_GT(CountRule(LintSource("src/serve/session.cc", content),
                      "raw-clock", false),
            0);
}

TEST(DhtLintTest, RawClockSuppressedViaAllowFileInTimerAndDeadline) {
  // The real headers carry reasoned allow-file suppressions: findings
  // exist but none are unsuppressed (lint gate stays green).
  const std::string timer =
      "// dhtlint: allow-file(raw-clock): measurement-only\n"
      "using Clock = std::chrono::steady_clock;\n";
  LintResult r = LintSource("src/util/timer.h", timer);
  EXPECT_EQ(CountRule(r, "raw-clock", /*suppressed=*/true), 1);
  EXPECT_EQ(r.NumUnsuppressed(), 0);
}

TEST(DhtLintTest, FloatAccumTripsAndSuppresses) {
  LintResult r =
      LintSource("src/dht/fixture.cc", ReadFixture("float_accum.cc"));
  EXPECT_EQ(CountRule(r, "float-accum", false), 2);
  EXPECT_EQ(CountRule(r, "float-accum", true), 1);
}

TEST(DhtLintTest, RawIdParamTripsInHeadersOnly) {
  const std::string content = ReadFixture("raw_id_param.h");
  LintResult header = LintSource("src/join2/fixture.h", content);
  EXPECT_EQ(CountRule(header, "raw-id-param", false), 2);
  EXPECT_EQ(CountRule(header, "raw-id-param", true), 1);
  // Implementation files index storage with raw ids by design.
  LintResult impl = LintSource("src/join2/fixture.cc", content);
  EXPECT_EQ(CountRule(impl, "raw-id-param", false), 0);
}

TEST(DhtLintTest, FileLevelSuppressionWaivesWholeFile) {
  const std::string content =
      "// dhtlint: allow-file(raw-id-param): raw interior below remap\n" +
      ReadFixture("raw_id_param.h");
  LintResult r = LintSource("src/dht/fixture.h", content);
  EXPECT_EQ(CountRule(r, "raw-id-param", false), 0);
  EXPECT_EQ(r.NumUnsuppressed(), 0);
  EXPECT_GT(CountRule(r, "raw-id-param", true), 0);
}

TEST(DhtLintTest, MutableStaticTripsInHotPathsOnly) {
  const std::string content = ReadFixture("mutable_static.cc");
  LintResult hot = LintSource("src/dht/fixture.cc", content);
  EXPECT_EQ(CountRule(hot, "mutable-static", false), 2);
  EXPECT_EQ(CountRule(hot, "mutable-static", true), 1);
  // Outside the dht/join2 hot paths the rule does not apply.
  LintResult cold = LintSource("src/serve/fixture.cc", content);
  EXPECT_EQ(CountRule(cold, "mutable-static", false), 0);
}

TEST(DhtLintTest, SuppressionWithoutReasonIsItselfAFinding) {
  LintResult r =
      LintSource("src/dht/fixture.cc", ReadFixture("bad_suppression.cc"));
  EXPECT_EQ(CountRule(r, "bad-suppression", false), 1);
  // ...and the underlying float-accum hit is NOT waived.
  EXPECT_EQ(CountRule(r, "float-accum", false), 1);
}

TEST(DhtLintTest, CleanFixtureProducesZeroFindings) {
  LintResult r = LintSource("src/dht/fixture.cc", ReadFixture("clean.cc"));
  EXPECT_TRUE(r.findings.empty())
      << "first unexpected: " << r.findings[0].rule << " @ line "
      << r.findings[0].line;
}

TEST(DhtLintTest, ReportJsonCarriesCountsAndFindings) {
  LintResult r =
      LintSource("src/dht/fixture.cc", ReadFixture("float_accum.cc"));
  const std::string json = ReportJson(r);
  EXPECT_NE(json.find("\"float-accum\": {\"total\": 3, \"suppressed\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"unsuppressed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/dht/fixture.cc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": "), std::string::npos);
}

TEST(DhtLintTest, DefaultScanPathSelectsEngineAndToolSources) {
  EXPECT_TRUE(DefaultScanPath("src/dht/propagate.cc"));
  EXPECT_TRUE(DefaultScanPath("src/graph/node_id.h"));
  EXPECT_TRUE(DefaultScanPath("tools/cli_parse.cc"));
  EXPECT_FALSE(DefaultScanPath("tests/lint_fixtures/raw_rng.cc"));
  EXPECT_FALSE(DefaultScanPath("tools/dhtlint_lib.cc"));  // self
  EXPECT_FALSE(DefaultScanPath("bench/bench_reorder.cc"));
  EXPECT_FALSE(DefaultScanPath("src/dht/README.md"));
}

TEST(DhtLintTest, MergeAccumulatesAcrossFiles) {
  LintResult a =
      LintSource("src/dht/a.cc", ReadFixture("float_accum.cc"));
  LintResult b =
      LintSource("src/dht/b.cc", ReadFixture("mutable_static.cc"));
  const int before = a.NumUnsuppressed();
  Merge(&a, b);
  EXPECT_EQ(a.NumUnsuppressed(), before + b.NumUnsuppressed());
}

}  // namespace
}  // namespace dhtjoin::lint
