/// \file tests/spjoin_test.cc
/// \brief The shortest-path distance-join baseline (BFS distances,
/// threshold join, distance-ranked link prediction).

#include <gtest/gtest.h>

#include "datasets/dblp_like.h"
#include "datasets/perturb.h"
#include "datasets/yeast_like.h"
#include "eval/link_prediction.h"
#include "spjoin/bfs.h"
#include "spjoin/distance_join.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::PathGraph;
using testing::RandomGraph;
using testing::Range;
using testing::TwoCommunityGraph;

// ------------------------------------------------------------------ BFS

TEST(BfsTest, PathGraphDistances) {
  Graph g = PathGraph(5);
  auto from0 = BfsFrom(g, IntNodeId(0), 10);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(from0[static_cast<std::size_t>(v)], v);
  }
  // Directed: nothing reaches node 0 except itself.
  auto to0 = BfsTo(g, IntNodeId(0), 10);
  EXPECT_EQ(to0[0], 0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(to0[static_cast<std::size_t>(v)], kUnreachable);
  }
}

TEST(BfsTest, DepthTruncation) {
  Graph g = PathGraph(6);
  auto dist = BfsFrom(g, IntNodeId(0), 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);  // beyond the truncation depth
}

TEST(BfsTest, ForwardBackwardSymmetryOnUndirected) {
  Graph g = TwoCommunityGraph();
  for (NodeId s : {0, 4, 9}) {
    auto fwd = BfsFrom(g, IntNodeId(s), 20);
    auto bwd = BfsTo(g, IntNodeId(s), 20);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(fwd[static_cast<std::size_t>(v)],
                bwd[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(BfsTest, BfsToMatchesBfsFromTransposed) {
  // On a directed random graph, BfsTo(g, t)[s] == distance s -> t.
  Graph g = RandomGraph(25, 70, 71, /*undirected=*/false);
  for (NodeId t : {3, 12, 20}) {
    auto to = BfsTo(g, IntNodeId(t), 25);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      auto from = BfsFrom(g, IntNodeId(s), 25);
      EXPECT_EQ(to[static_cast<std::size_t>(s)],
                from[static_cast<std::size_t>(t)])
          << "s=" << s << " t=" << t;
    }
  }
}

// -------------------------------------------------------- DistanceJoin

TEST(DistanceJoinTest, ThresholdSemantics) {
  // 0 - 1 - 2 - 3 (undirected chain): with delta = 1 only adjacent
  // pairs join; delta = 3 joins everything connected.
  GraphBuilder b(4, true);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  Graph g = std::move(b.Build()).value();
  QueryGraph q;
  int a = q.AddNodeSet(NodeSet("A", {0, 1}));
  int c = q.AddNodeSet(NodeSet("C", {2, 3}));
  ASSERT_TRUE(q.AddEdge(a, c).ok());

  auto d1 = DistanceJoin(g, q, 1);
  ASSERT_TRUE(d1.ok());
  ASSERT_EQ(d1->tuples.size(), 1u);  // only (1, 2)
  EXPECT_EQ(d1->tuples[0], (std::vector<NodeId>{1, 2}));

  auto d3 = DistanceJoin(g, q, 3);
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(d3->tuples.size(), 4u);  // all pairs within 3 hops
}

TEST(DistanceJoinTest, MultiEdgeQueryRequiresAllEdges) {
  Graph g = TwoCommunityGraph();
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 3));
  int b = q.AddNodeSet(Range("B", 3, 6));
  int c = q.AddNodeSet(Range("C", 6, 9));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  ASSERT_TRUE(q.AddEdge(b, c).ok());
  auto result = DistanceJoin(g, q, 2);
  ASSERT_TRUE(result.ok());
  for (const auto& t : result->tuples) {
    // Verify both constraints via reference BFS.
    auto d_ab = BfsFrom(g, IntNodeId(t[0]), 2);
    auto d_bc = BfsFrom(g, IntNodeId(t[1]), 2);
    EXPECT_NE(d_ab[static_cast<std::size_t>(t[1])], kUnreachable);
    EXPECT_LE(d_ab[static_cast<std::size_t>(t[1])], 2);
    EXPECT_NE(d_bc[static_cast<std::size_t>(t[2])], kUnreachable);
    EXPECT_LE(d_bc[static_cast<std::size_t>(t[2])], 2);
  }
}

TEST(DistanceJoinTest, ResultCapTruncates) {
  Graph g = testing::CompleteGraph(12);
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 6));
  int b = q.AddNodeSet(Range("B", 6, 12));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  auto result = DistanceJoin(g, q, 1, /*max_results=*/10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 10u);
  EXPECT_TRUE(result->truncated);
}

TEST(DistanceJoinTest, CardinalityExplodesWithDelta) {
  // The paper's usability criticism: result counts are hypersensitive
  // to delta.
  auto ds = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
      .num_nodes = 400, .num_edges = 1600, .seed = 9});
  ASSERT_TRUE(ds.ok());
  QueryGraph q;
  int a = q.AddNodeSet(ds->partitions[0]);
  int b = q.AddNodeSet(ds->partitions[1]);
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  std::size_t prev = 0;
  for (int delta = 1; delta <= 4; ++delta) {
    auto result = DistanceJoin(ds->graph, q, delta, 1000000);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->tuples.size(), prev);
    prev = result->tuples.size();
  }
  EXPECT_GT(prev, 100u);  // delta = 4 already joins a large fraction
}

TEST(DistanceJoinTest, InvalidInputsRejected) {
  Graph g = TwoCommunityGraph();
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 3));
  int b = q.AddNodeSet(Range("B", 3, 6));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  EXPECT_FALSE(DistanceJoin(g, q, 0).ok());
  QueryGraph empty;
  EXPECT_FALSE(DistanceJoin(g, empty, 2).ok());
}

// --------------------------------------- distance-ranked link prediction

TEST(SpLinkPredictionTest, DhtBeatsShortestPathOnWeightedGraph) {
  // The paper's accuracy claim (Sec II): random-walk proximity is the
  // better predictor. The decisive case is a WEIGHTED graph — hop
  // distance ignores tie strength entirely, and it also collapses
  // thousands of candidates onto a handful of integer values.
  auto ds = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 4000, .seed = 11});
  ASSERT_TRUE(ds.ok());
  auto snapshot = ds->SnapshotBefore(2010);
  ASSERT_TRUE(snapshot.ok());
  NodeSet db = ds->Area("DB")->TopByDegree(ds->graph, 150);
  NodeSet ai = ds->Area("AI")->TopByDegree(ds->graph, 150);

  DhtParams params = DhtParams::Lambda(0.2);
  auto dht_roc =
      eval::EvaluateLinkPrediction(ds->graph, *snapshot, db, ai, params, 8);
  auto sp_roc =
      EvaluateLinkPredictionByDistance(ds->graph, *snapshot, db, ai, 8);
  ASSERT_TRUE(dht_roc.ok());
  ASSERT_TRUE(sp_roc.ok());
  if (dht_roc->positives == 0) GTEST_SKIP() << "no new links in sample";
  EXPECT_GT(sp_roc->auc, 0.4);             // distance is not useless...
  EXPECT_GT(dht_roc->auc, sp_roc->auc);    // ...but DHT is better
}

}  // namespace
}  // namespace dhtjoin
