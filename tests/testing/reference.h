/// \file tests/testing/reference.h
/// \brief Independent ground-truth oracles and graph fixtures for tests.
///
/// RefFirstHitProb enumerates every walk explicitly (exponential in d;
/// only for tiny graphs) — a genuinely independent check of both the
/// forward and backward propagation engines. RefTwoWayJoin and
/// RefNwayJoin are brute-force joins built on top of it / of the
/// (separately validated) walkers.

#ifndef DHTJOIN_TESTS_TESTING_REFERENCE_H_
#define DHTJOIN_TESTS_TESTING_REFERENCE_H_

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

#include "dht/backward.h"
#include "dht/params.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/node_set.h"
#include "join2/two_way_join.h"
#include "rankjoin/aggregate.h"
#include "rankjoin/pbrj.h"
#include "util/check.h"
#include "util/rng.h"

namespace dhtjoin::testing {

/// Probability that a walk from `u` FIRST hits `v` at exactly step `i`,
/// by explicit enumeration of all walks (exponential; tiny graphs only).
inline double RefFirstHitProb(const Graph& g, NodeId u, NodeId v, int i) {
  DHTJOIN_CHECK_GE(i, 1);
  // u and v are EXTERNAL ids; rows are layout-addressed, so translate
  // on the way in and out — the oracle is layout-independent.
  // When u == v the result is the first-RETURN probability; the start
  // node does not count as a hit, so the recursion below covers it.
  double total = 0.0;
  for (const OutEdge& e : g.OutEdges(g.ToInternal(ExtNodeId(u)))) {
    const NodeId to = g.ToExternal(IntNodeId(e.to)).value();
    if (i == 1) {
      if (to == v) total += e.prob;
    } else if (to != v) {
      total += e.prob * RefFirstHitProb(g, to, v, i - 1);
    }
  }
  return total;
}

/// Truncated DHT h_d(u, v) from the path oracle.
inline double RefHd(const Graph& g, const DhtParams& params, int d, NodeId u,
                    NodeId v) {
  double score = params.beta;
  double lp = 1.0;
  for (int i = 1; i <= d; ++i) {
    lp *= params.lambda;
    score += params.alpha * lp * RefFirstHitProb(g, u, v, i);
  }
  return score;
}

/// Brute-force 2-way join via the backward walker (validated separately
/// against RefHd). Returns all valid pairs sorted, truncated to k.
inline std::vector<ScoredPair> RefTwoWayJoin(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             std::size_t k) {
  BackwardWalker walker(g);
  std::vector<ScoredPair> out;
  for (ExtNodeId q : Q) {
    walker.Reset(params, q);
    walker.Advance(d);
    for (ExtNodeId p : P) {
      if (p == q) continue;
      double s = walker.Score(p);
      if (s > params.beta) {
        out.push_back(ScoredPair{p.value(), q.value(), s});
      }
    }
  }
  std::sort(out.begin(), out.end(), ScoredPairGreater);
  if (out.size() > k) out.resize(k);
  return out;
}

/// Brute-force n-way join: all pair scores via the backward walker, full
/// tuple enumeration, validity filtering, top-k by f. Independent of the
/// PBRJ machinery.
inline std::vector<TupleAnswer> RefNwayJoin(
    const Graph& g, const DhtParams& params, int d,
    const std::vector<NodeSet>& sets, const std::vector<JoinEdge>& edges,
    const Aggregate& f, std::size_t k) {
  // Pair score tables per edge.
  struct Table {
    std::vector<ScoredPair> pairs;
    double Get(NodeId p, NodeId q) const {
      for (const auto& sp : pairs) {
        if (sp.p == p && sp.q == q) return sp.score;
      }
      return -std::numeric_limits<double>::infinity();  // invalid pair
    }
  };
  std::vector<Table> tables(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    tables[e].pairs = RefTwoWayJoin(
        g, params, d, sets[static_cast<std::size_t>(edges[e].left)],
        sets[static_cast<std::size_t>(edges[e].right)],
        static_cast<std::size_t>(-1));
  }

  std::vector<TupleAnswer> all;
  std::vector<NodeId> tuple(sets.size(), kInvalidNode);
  auto enumerate = [&](auto&& self, std::size_t attr) -> void {
    if (attr == sets.size()) {
      TupleAnswer a;
      a.nodes = tuple;
      a.edge_scores.resize(edges.size());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        double s = tables[e].Get(
            tuple[static_cast<std::size_t>(edges[e].left)],
            tuple[static_cast<std::size_t>(edges[e].right)]);
        if (s == -std::numeric_limits<double>::infinity()) return;
        a.edge_scores[e] = s;
      }
      a.f = f.Apply(a.edge_scores);
      all.push_back(std::move(a));
      return;
    }
    for (ExtNodeId r : sets[attr]) {
      tuple[attr] = r.value();
      self(self, attr + 1);
    }
  };
  enumerate(enumerate, 0);
  std::sort(all.begin(), all.end(), TupleAnswerGreater);
  if (all.size() > k) all.resize(k);
  return all;
}

// ---------------------------------------------------------------------
// Graph fixtures.
// ---------------------------------------------------------------------

/// Directed path 0 -> 1 -> ... -> n-1.
inline Graph PathGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    DHTJOIN_CHECK(b.AddEdge(u, u + 1).ok());
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
inline Graph CycleGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    DHTJOIN_CHECK(b.AddEdge(u, (u + 1) % n).ok());
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// Undirected complete graph K_n, unit weights.
inline Graph CompleteGraph(NodeId n) {
  GraphBuilder b(n, /*undirected=*/true);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      DHTJOIN_CHECK(b.AddEdge(u, v).ok());
    }
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// Undirected star: hub 0 connected to 1..n-1.
inline Graph StarGraph(NodeId n) {
  GraphBuilder b(n, /*undirected=*/true);
  for (NodeId v = 1; v < n; ++v) {
    DHTJOIN_CHECK(b.AddEdge(0, v).ok());
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// The paper's Figure 1(a)-style graph: two small communities bridged by
/// a few edges; weighted and undirected. 10 nodes.
inline Graph TwoCommunityGraph() {
  GraphBuilder b(10, /*undirected=*/true);
  // Community A: 0-4 (dense).
  const NodeId a[] = {0, 1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if ((i + j) % 3 != 0) {
        DHTJOIN_CHECK(b.AddEdge(a[i], a[j], 1.0 + i).ok());
      }
    }
  }
  // Community B: 5-9 (ring).
  for (NodeId u = 5; u < 10; ++u) {
    DHTJOIN_CHECK(b.AddEdge(u, u == 9 ? 5 : u + 1, 2.0).ok());
  }
  // Bridges.
  DHTJOIN_CHECK(b.AddEdge(2, 7, 0.5).ok());
  DHTJOIN_CHECK(b.AddEdge(4, 5, 1.5).ok());
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// Random simple graph for property sweeps; deterministic per seed.
inline Graph RandomGraph(NodeId n, int64_t edges, uint64_t seed,
                         bool undirected = true, bool weighted = false) {
  GraphBuilder b(n, undirected);
  Rng rng(seed);
  int64_t added = 0;
  int64_t guard = 0;
  // Hash-set dedup: membership tests are O(1), so large fixtures stay
  // linear in |edges|. Same accept/reject sequence as any other exact
  // membership structure, so graphs are unchanged for a given seed.
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(edges) * 2);
  while (added < edges && guard < 500 * edges) {
    ++guard;
    auto u = static_cast<NodeId>(rng.Below(static_cast<uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.Below(static_cast<uint64_t>(n)));
    if (u == v) continue;
    uint64_t key = undirected ? PairKey(std::min(u, v), std::max(u, v))
                              : PairKey(u, v);
    if (!seen.insert(key).second) continue;
    double w = weighted ? 1.0 + static_cast<double>(rng.Below(5)) : 1.0;
    DHTJOIN_CHECK(b.AddEdge(u, v, w).ok());
    ++added;
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

/// First `count` node ids as a NodeSet.
inline NodeSet Range(const char* name, NodeId begin, NodeId end) {
  std::vector<NodeId> ids;
  for (NodeId u = begin; u < end; ++u) ids.push_back(u);
  return NodeSet(name, std::move(ids));
}

}  // namespace dhtjoin::testing

#endif  // DHTJOIN_TESTS_TESTING_REFERENCE_H_
