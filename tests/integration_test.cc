/// \file tests/integration_test.cc
/// \brief End-to-end pipelines over the synthetic datasets: generate ->
/// join -> evaluate, exercising the public umbrella API the way the
/// examples and benches do.

#include <gtest/gtest.h>

#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"
#include "datasets/perturb.h"
#include "datasets/yeast_like.h"
#include "eval/link_prediction.h"

namespace dhtjoin {
namespace {

class YeastPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
        .num_nodes = 800, .num_edges = 2400, .seed = 77});
    ASSERT_TRUE(ds.ok());
    dataset_ = new datasets::YeastLikeDataset(std::move(ds).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static datasets::YeastLikeDataset* dataset_;
};

datasets::YeastLikeDataset* YeastPipeline::dataset_ = nullptr;

TEST_F(YeastPipeline, TwoWayJoinTopKStable) {
  DhtParams p = DhtParams::Lambda(0.2);
  int d = p.StepsForEpsilon(1e-6);
  ASSERT_EQ(d, 8);
  NodeSet P = dataset_->partitions[0].TopByDegree(dataset_->graph, 40);
  NodeSet Q = dataset_->partitions[1].TopByDegree(dataset_->graph, 40);
  BIdjJoin y(BIdjJoin::Options{UpperBoundKind::kY});
  BBjJoin basic;
  auto fast = y.Run(dataset_->graph, p, d, P, Q, 25);
  auto slow = basic.Run(dataset_->graph, p, d, P, Q, 25);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->size(), slow->size());
  for (std::size_t i = 0; i < fast->size(); ++i) {
    EXPECT_NEAR((*fast)[i].score, (*slow)[i].score, 1e-9);
  }
}

TEST_F(YeastPipeline, ChainAndTriangleJoinsAgreeAcrossAlgorithms) {
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet A = dataset_->partitions[0].TopByDegree(dataset_->graph, 15);
  NodeSet B = dataset_->partitions[1].TopByDegree(dataset_->graph, 15);
  NodeSet C = dataset_->partitions[2].TopByDegree(dataset_->graph, 15);

  for (bool triangle : {false, true}) {
    QueryGraph q;
    int a = q.AddNodeSet(A);
    int b = q.AddNodeSet(B);
    int c = q.AddNodeSet(C);
    ASSERT_TRUE(q.AddEdge(a, b).ok());
    ASSERT_TRUE(q.AddEdge(b, c).ok());
    if (triangle) ASSERT_TRUE(q.AddEdge(a, c).ok());
    MinAggregate f;
    AllPairsJoin ap(AllPairsJoin::Options{AllPairsJoin::Engine::kBackward});
    PartialJoin pj(PartialJoin::Options{.m = 20, .incremental = false});
    PartialJoin pji(PartialJoin::Options{.m = 20, .incremental = true});
    auto want = ap.Run(dataset_->graph, p, 8, q, f, 10);
    ASSERT_TRUE(want.ok());
    for (NwayJoin* algo :
         {static_cast<NwayJoin*>(&pj), static_cast<NwayJoin*>(&pji)}) {
      auto got = algo->Run(dataset_->graph, p, 8, q, f, 10);
      ASSERT_TRUE(got.ok()) << algo->Name();
      ASSERT_EQ(got->size(), want->size()) << algo->Name();
      for (std::size_t i = 0; i < want->size(); ++i) {
        EXPECT_NEAR((*got)[i].f, (*want)[i].f, 1e-9)
            << algo->Name() << " rank " << i << (triangle ? " tri" : " chain");
      }
    }
  }
}

TEST_F(YeastPipeline, DhtVariantsBothWork) {
  NodeSet P = dataset_->partitions[0].TopByDegree(dataset_->graph, 20);
  NodeSet Q = dataset_->partitions[1].TopByDegree(dataset_->graph, 20);
  for (DhtParams p : {DhtParams::Lambda(0.2), DhtParams::Exponential()}) {
    int d = p.StepsForEpsilon(1e-6);
    BIdjJoin join;
    auto got = join.Run(dataset_->graph, p, d, P, Q, 10);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->empty());
    for (const ScoredPair& sp : *got) {
      EXPECT_GT(sp.score, p.FloorScore());
      EXPECT_LE(sp.score, p.MaxScore() + 1e-12);
    }
  }
}

TEST(DblpPipeline, TemporalLinkPredictionBeatsChance) {
  auto ds = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 3000, .seed = 5});
  ASSERT_TRUE(ds.ok());
  auto snapshot = ds->SnapshotBefore(2010);
  ASSERT_TRUE(snapshot.ok());
  NodeSet db = ds->Area("DB")->TopByDegree(ds->graph, 120);
  NodeSet ai = ds->Area("AI")->TopByDegree(ds->graph, 120);
  DhtParams p = DhtParams::Lambda(0.2);
  auto roc = eval::EvaluateLinkPrediction(ds->graph, *snapshot, db, ai, p, 8);
  ASSERT_TRUE(roc.ok()) << roc.status().ToString();
  if (roc->positives == 0) GTEST_SKIP() << "no new DB-AI links in sample";
  EXPECT_GT(roc->auc, 0.6);
}

TEST(DblpPipeline, GraphRoundTripsThroughIo) {
  auto ds = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 500, .seed = 6});
  ASSERT_TRUE(ds.ok());
  std::string path = ::testing::TempDir() + "dhtjoin_dblp_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(ds->graph, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), ds->graph.num_edges());
  // Joins on the loaded graph behave identically.
  NodeSet db = ds->Area("DB")->TopByDegree(ds->graph, 20);
  NodeSet ai = ds->Area("AI")->TopByDegree(ds->graph, 20);
  DhtParams p = DhtParams::Lambda(0.2);
  BIdjJoin join;
  auto a = join.Run(ds->graph, p, 8, db, ai, 10);
  auto b = join.Run(*loaded, p, 8, db, ai, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
  std::remove(path.c_str());
}

TEST(UmbrellaHeaderTest, QuickstartCompilesAndRuns) {
  // The doc-comment example from core/dhtjoin.h, executed literally.
  GraphBuilder builder(6, /*undirected=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 4).ok());
  Graph g = std::move(builder.Build()).value();
  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);

  NodeSet P("P", {0, 1, 2});
  NodeSet Q("Q", {3, 4, 5});
  BIdjJoin two_way;
  auto pairs = two_way.Run(g, dht, d, P, Q, 3);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 3u);

  QueryGraph query;
  int a = query.AddNodeSet(P);
  int b = query.AddNodeSet(Q);
  ASSERT_TRUE(query.AddBidirectionalEdge(a, b).ok());
  PartialJoin pji(PartialJoin::Options{.m = 5, .incremental = true});
  MinAggregate min_f;
  auto tuples = pji.Run(g, dht, d, query, min_f, 3);
  ASSERT_TRUE(tuples.ok());
  EXPECT_FALSE(tuples->empty());
}

}  // namespace
}  // namespace dhtjoin
