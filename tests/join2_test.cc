/// \file tests/join2_test.cc
/// \brief Agreement and semantics tests for the five 2-way join
/// algorithms (F-BJ, F-IDJ, B-BJ, B-IDJ-X, B-IDJ-Y).

#include <gtest/gtest.h>

#include <memory>

#include "join2/b_bj.h"
#include "join2/b_idj.h"
#include "join2/f_bj.h"
#include "join2/f_idj.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::RefTwoWayJoin;
using testing::TwoCommunityGraph;

std::vector<std::unique_ptr<TwoWayJoin>> AllAlgorithms() {
  std::vector<std::unique_ptr<TwoWayJoin>> algos;
  algos.push_back(std::make_unique<FBjJoin>());
  algos.push_back(std::make_unique<FIdjJoin>());
  algos.push_back(std::make_unique<BBjJoin>());
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX}));
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY}));
  return algos;
}

void ExpectSameScores(const std::vector<ScoredPair>& got,
                      const std::vector<ScoredPair>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Scores must agree; pair identity may differ only between ties.
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9)
        << label << " rank " << i;
  }
}

struct JoinCase {
  uint64_t seed;
  double lambda;  // 0 = DHTe
  std::size_t k;
  bool weighted;
};

class TwoWayAgreement : public ::testing::TestWithParam<JoinCase> {};

TEST_P(TwoWayAgreement, AllFiveAlgorithmsMatchBruteForce) {
  const auto& c = GetParam();
  Graph g = RandomGraph(50, 160, c.seed, /*undirected=*/true, c.weighted);
  DhtParams p =
      c.lambda > 0 ? DhtParams::Lambda(c.lambda) : DhtParams::Exponential();
  const int d = 8;
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 25, 45);
  auto want = RefTwoWayJoin(g, p, d, P, Q, c.k);
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, d, P, Q, c.k);
    ASSERT_TRUE(got.ok()) << algo->Name() << ": "
                          << got.status().ToString();
    ExpectSameScores(*got, want, algo->Name());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoWayAgreement,
    ::testing::Values(JoinCase{101, 0.2, 10, false},
                      JoinCase{102, 0.2, 50, true},
                      JoinCase{103, 0.5, 25, false},
                      JoinCase{104, 0.8, 10, true},
                      JoinCase{105, 0.0, 10, false},  // DHTe
                      JoinCase{106, 0.0, 40, true},
                      JoinCase{107, 0.6, 1, false},
                      JoinCase{108, 0.4, 400, true}));  // k > pair space

TEST(TwoWayJoinTest, OverlappingSetsExcludeSelfPairs) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 6);
  NodeSet Q = Range("Q", 4, 10);  // overlaps P on {4, 5}
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, 8, P, Q, 100);
    ASSERT_TRUE(got.ok()) << algo->Name();
    for (const ScoredPair& sp : *got) {
      EXPECT_NE(sp.p, sp.q) << algo->Name();
    }
  }
}

TEST(TwoWayJoinTest, UnreachablePairsExcluded) {
  // Directed path 0->1->2: node 0 is unreachable FROM anywhere, so as a
  // join target it must never appear.
  Graph g = testing::PathGraph(3);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P("P", {1, 2});
  NodeSet Q("Q", std::vector<NodeId>{0});
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, 8, P, Q, 10);
    ASSERT_TRUE(got.ok()) << algo->Name();
    EXPECT_TRUE(got->empty()) << algo->Name();
  }
}

TEST(TwoWayJoinTest, ResultsSortedDescending) {
  Graph g = RandomGraph(40, 120, 109);
  DhtParams p = DhtParams::Lambda(0.2);
  for (auto& algo : AllAlgorithms()) {
    auto got = algo->Run(g, p, 8, Range("P", 0, 15), Range("Q", 20, 35), 30);
    ASSERT_TRUE(got.ok());
    for (std::size_t i = 1; i < got->size(); ++i) {
      EXPECT_GE((*got)[i - 1].score, (*got)[i].score) << algo->Name();
    }
  }
}

TEST(TwoWayJoinTest, ScoresAreExactNotBounds) {
  // IDJ variants must return exact d-step scores for survivors, equal to
  // a direct backward computation.
  Graph g = RandomGraph(40, 120, 110);
  DhtParams p = DhtParams::Lambda(0.4);
  const int d = 8;
  BIdjJoin algo(BIdjJoin::Options{UpperBoundKind::kY});
  auto got = algo.Run(g, p, d, Range("P", 0, 15), Range("Q", 20, 35), 10);
  ASSERT_TRUE(got.ok());
  BackwardWalker w(g);
  for (const ScoredPair& sp : *got) {
    w.Reset(p, ExtNodeId(sp.q));
    w.Advance(d);
    EXPECT_NEAR(sp.score, w.Score(ExtNodeId(sp.p)), 1e-12);
  }
}

TEST(TwoWayJoinTest, InvalidInputsRejected) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 5);
  NodeSet Q = Range("Q", 5, 10);
  BBjJoin algo;
  EXPECT_FALSE(algo.Run(g, p, 0, P, Q, 10).ok());          // d < 1
  EXPECT_FALSE(algo.Run(g, p, 8, P, Q, 0).ok());           // k == 0
  EXPECT_FALSE(
      algo.Run(g, p, 8, NodeSet("E", std::vector<NodeId>{}), Q, 10).ok());
  EXPECT_FALSE(
      algo.Run(g, p, 8, NodeSet("B", std::vector<NodeId>{99}), Q, 10).ok());
  DhtParams bad = p;
  bad.lambda = 1.5;
  EXPECT_FALSE(algo.Run(g, bad, 8, P, Q, 10).ok());
}

TEST(TwoWayJoinTest, StatsReflectBackwardAdvantage) {
  // B-BJ restarts one walker per target; F-BJ one per pair.
  Graph g = RandomGraph(40, 120, 111);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 15);
  NodeSet Q = Range("Q", 20, 35);
  FBjJoin fbj;
  BBjJoin bbj;
  ASSERT_TRUE(fbj.Run(g, p, 8, P, Q, 10).ok());
  ASSERT_TRUE(bbj.Run(g, p, 8, P, Q, 10).ok());
  EXPECT_EQ(bbj.stats().walks_started, static_cast<int64_t>(Q.size()));
  EXPECT_EQ(fbj.stats().walks_started,
            static_cast<int64_t>(P.size() * Q.size()));
}

TEST(TwoWayJoinTest, IdjStatsRecordPruning) {
  Graph g = RandomGraph(60, 180, 112);
  DhtParams p = DhtParams::Lambda(0.2);
  BIdjJoin algo(BIdjJoin::Options{UpperBoundKind::kY});
  ASSERT_TRUE(
      algo.Run(g, p, 8, Range("P", 0, 20), Range("Q", 30, 55), 5).ok());
  const auto& st = algo.stats();
  // d=8 -> deepening levels l = 1, 2, 4 -> 3 pruning records, 4 live
  // counts (initial + after each level).
  EXPECT_EQ(st.pruned_fraction_per_iteration.size(), 3u);
  EXPECT_EQ(st.live_per_iteration.size(), 4u);
  EXPECT_EQ(st.live_per_iteration[0], 25);
  for (double f : st.pruned_fraction_per_iteration) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Cumulative pruning can only grow.
  for (std::size_t i = 1; i < st.pruned_fraction_per_iteration.size(); ++i) {
    EXPECT_GE(st.pruned_fraction_per_iteration[i],
              st.pruned_fraction_per_iteration[i - 1] - 1e-15);
  }
}

TEST(TwoWayJoinTest, YPrunesAtLeastAsManyAsX) {
  // Lemma 5 consequence, checked behaviourally on a community graph at
  // large lambda (where X is loose - the paper's Fig. 10(b) setting).
  Graph g = RandomGraph(80, 240, 113);
  DhtParams p = DhtParams::Lambda(0.7);
  NodeSet P = Range("P", 0, 25);
  NodeSet Q = Range("Q", 40, 75);
  const int d = DhtParams::Lambda(0.7).StepsForEpsilon(1e-6);
  BIdjJoin x(BIdjJoin::Options{UpperBoundKind::kX});
  BIdjJoin y(BIdjJoin::Options{UpperBoundKind::kY});
  ASSERT_TRUE(x.Run(g, p, d, P, Q, 5).ok());
  ASSERT_TRUE(y.Run(g, p, d, P, Q, 5).ok());
  const auto& fx = x.stats().pruned_fraction_per_iteration;
  const auto& fy = y.stats().pruned_fraction_per_iteration;
  ASSERT_EQ(fx.size(), fy.size());
  for (std::size_t i = 0; i < fx.size(); ++i) {
    EXPECT_GE(fy[i], fx[i] - 1e-12) << "iteration " << i;
  }
}

TEST(TwoWayJoinTest, DirectedAsymmetry) {
  // h(u, v) != h(v, u) on a directed graph; joins in both orientations
  // must reflect it.
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 0).ok());
  ASSERT_TRUE(b.AddEdge(1, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 1).ok());
  Graph g = std::move(b.Build()).value();
  DhtParams p = DhtParams::Lambda(0.5);
  BBjJoin algo;
  NodeSet A("A", std::vector<NodeId>{0});
  NodeSet B("B", std::vector<NodeId>{1});
  auto ab = algo.Run(g, p, 8, A, B, 1);
  auto ba = algo.Run(g, p, 8, B, A, 1);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  ASSERT_EQ(ab->size(), 1u);
  ASSERT_EQ(ba->size(), 1u);
  // 0 reaches 1 in one step; 1 reaches 0 via 2 (two steps) or 3->1 loop.
  EXPECT_GT((*ab)[0].score, (*ba)[0].score);
}

}  // namespace
}  // namespace dhtjoin
