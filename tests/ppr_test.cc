/// \file tests/ppr_test.cc
/// \brief The Personalized-PageRank extension (the paper's stated future
/// work): visiting-probability semantics through the same general-form
/// engine, walkers, bounds, and join algorithms.

#include <gtest/gtest.h>

#include <memory>

#include "dht/backward.h"
#include "dht/bounds.h"
#include "dht/forward.h"
#include "join2/b_bj.h"
#include "join2/b_idj.h"
#include "join2/f_bj.h"
#include "join2/f_idj.h"
#include "core/partial_join.h"
#include "core/query_graph.h"
#include "join2/incremental.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::CycleGraph;
using testing::RandomGraph;
using testing::Range;
using testing::TwoCommunityGraph;

TEST(PprParamsTest, FactoryCoefficients) {
  DhtParams p = DhtParams::PersonalizedPageRank(0.85);
  EXPECT_DOUBLE_EQ(p.alpha, 0.15);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.lambda, 0.85);
  EXPECT_FALSE(p.first_hit);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PprWalkerTest, TwoCycleClosedForm) {
  // On the directed 2-cycle 0 <-> 1, S_i(0, 1) = 1 for odd i, 0 for
  // even i, so PPR(0,1) = (1-c) * (c + c^3 + c^5 + ...) -> c(1-c)/(1-c^2)
  // = c / (1 + c) as d -> infinity.
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 0).ok());
  Graph g = std::move(b.Build()).value();
  const double c = 0.6;
  DhtParams p = DhtParams::PersonalizedPageRank(c);
  int d = p.StepsForEpsilon(1e-10);
  ForwardWalker w(g);
  EXPECT_NEAR(w.Compute(p, d, ExtNodeId(0), ExtNodeId(1)), c / (1.0 + c),
              1e-9);
}

TEST(PprWalkerTest, VisitingNotFirstHit) {
  // On the directed 4-cycle the walk REVISITS the predecessor every 4
  // steps; first-hit semantics count only the first pass. The PPR score
  // must therefore exceed the equivalent first-hit score.
  Graph g = CycleGraph(4);
  const double c = 0.8;
  DhtParams visit = DhtParams::PersonalizedPageRank(c);
  DhtParams hit = visit;
  hit.first_hit = true;
  const int d = 20;
  ForwardWalker w(g);
  double s_visit = w.Compute(visit, d, ExtNodeId(0), ExtNodeId(3));
  double s_hit = w.Compute(hit, d, ExtNodeId(0), ExtNodeId(3));
  EXPECT_GT(s_visit, s_hit + 1e-9);
}

TEST(PprWalkerTest, ForwardEqualsBackward) {
  Graph g = RandomGraph(30, 90, 61, /*undirected=*/true, /*weighted=*/true);
  DhtParams p = DhtParams::PersonalizedPageRank(0.7);
  const int d = 12;
  ForwardWalker fw(g);
  BackwardWalker bw(g);
  for (NodeId v : {2, 11, 23}) {
    bw.Reset(p, ExtNodeId(v));
    bw.Advance(d);
    for (NodeId u : {0, 5, 17, 28}) {
      if (u == v) continue;
      EXPECT_NEAR(fw.Compute(p, d, ExtNodeId(u), ExtNodeId(v)),
                  bw.Score(ExtNodeId(u)), 1e-10);
    }
  }
}

TEST(PprWalkerTest, VisitProbabilitiesCanSumPastOne) {
  // Unlike first-hit probabilities, per-step visiting probabilities are
  // not a sub-distribution: the walk can occupy the target many times.
  Graph g = CycleGraph(3);
  DhtParams p = DhtParams::PersonalizedPageRank(0.9);
  ForwardWalker w(g);
  w.Reset(p, ExtNodeId(0), ExtNodeId(2));
  w.Advance(30);
  double total = 0.0;
  for (int i = 1; i <= 30; ++i) total += w.HitProbability(i);
  EXPECT_GT(total, 1.5);  // visited on steps 2, 5, 8, ...
}

TEST(PprBoundsTest, XAndYBracketRemainder) {
  Graph g = RandomGraph(40, 120, 62);
  DhtParams p = DhtParams::PersonalizedPageRank(0.8);
  const int d = 12;
  NodeSet P = Range("P", 0, 10);
  NodeSet Q = Range("Q", 20, 30);
  YBoundTable ytable(g, p, d, P, Q);
  BackwardWalker partial(g), full(g);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    ExtNodeId q = Q[qi];
    full.Reset(p, q);
    full.Advance(d);
    partial.Reset(p, q);
    for (int l = 1; l <= d; ++l) {
      partial.Advance(1);
      for (ExtNodeId u : P) {
        if (u == q) continue;
        EXPECT_LE(full.Score(u), partial.Score(u) + p.XBound(l) + 1e-12);
        EXPECT_LE(full.Score(u),
                  partial.Score(u) + ytable.Bound(l, qi) + 1e-12);
      }
    }
  }
}

class PprJoinSweep : public ::testing::TestWithParam<double> {};

TEST_P(PprJoinSweep, AllFiveJoinAlgorithmsAgree) {
  const double c = GetParam();
  Graph g = RandomGraph(50, 160, 63, /*undirected=*/true,
                        /*weighted=*/true);
  DhtParams p = DhtParams::PersonalizedPageRank(c);
  const int d = 10;
  NodeSet P = Range("P", 0, 18);
  NodeSet Q = Range("Q", 25, 43);
  auto want = testing::RefTwoWayJoin(g, p, d, P, Q, 25);
  std::vector<std::unique_ptr<TwoWayJoin>> algos;
  algos.push_back(std::make_unique<FBjJoin>());
  algos.push_back(std::make_unique<FIdjJoin>());
  algos.push_back(std::make_unique<BBjJoin>());
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX}));
  algos.push_back(
      std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY}));
  for (auto& algo : algos) {
    auto got = algo->Run(g, p, d, P, Q, 25);
    ASSERT_TRUE(got.ok()) << algo->Name();
    ASSERT_EQ(got->size(), want.size()) << algo->Name();
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR((*got)[i].score, want[i].score, 1e-9)
          << algo->Name() << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ContinuationProbs, PprJoinSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85));

TEST(PprJoinTest, IncrementalEnumeratorWorks) {
  Graph g = RandomGraph(40, 130, 64);
  DhtParams p = DhtParams::PersonalizedPageRank(0.6);
  const int d = 10;
  NodeSet P = Range("P", 0, 14);
  NodeSet Q = Range("Q", 18, 32);
  auto want = testing::RefTwoWayJoin(g, p, d, P, Q,
                                     static_cast<std::size_t>(-1));
  auto join = IncrementalTwoWayJoin::Create(g, p, d, P, Q, 10);
  ASSERT_TRUE(join.ok());
  std::vector<ScoredPair> got;
  while (auto next = (*join)->Next()) got.push_back(*next);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9) << "rank " << i;
  }
}

TEST(PprJoinTest, NwayJoinAgreesWithBruteForce) {
  // The full PJ-i pipeline under PPR, against exhaustive enumeration.
  Graph g = RandomGraph(32, 110, 65);
  DhtParams p = DhtParams::PersonalizedPageRank(0.7);
  const int d = 10;
  QueryGraph q;
  int a = q.AddNodeSet(Range("A", 0, 8));
  int b = q.AddNodeSet(Range("B", 10, 18));
  int c = q.AddNodeSet(Range("C", 20, 28));
  ASSERT_TRUE(q.AddEdge(a, b).ok());
  ASSERT_TRUE(q.AddEdge(b, c).ok());
  MinAggregate f;
  auto want = testing::RefNwayJoin(g, p, d, q.sets(), q.edges(), f, 10);
  PartialJoin pji(PartialJoin::Options{.m = 8, .incremental = true});
  auto got = pji.Run(g, p, d, q, f, 10);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR((*got)[i].f, want[i].f, 1e-9) << "rank " << i;
  }
}

TEST(PprJoinTest, RankingDiffersFromDht) {
  // PPR rewards recurrent proximity; DHT only the first arrival.
  // Target A (node 1) is hit at step 1 w.p. 1/2, then the walk leaves
  // forever (1 -> 4 <-> 5). Target B (node 3) is first hit at step 2
  // w.p. 1/2 but then revisited every second step via 3 <-> 2.
  //   DHT:  A = a*l/2 + b   >  B = a*l^2/2 + b             (any l)
  //   PPR:  A = (1-c)c/2    <  B = c^2/(2(1+c))   for c > 0.618...
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());  // -> A
  ASSERT_TRUE(b.AddEdge(0, 2).ok());  // -> C
  ASSERT_TRUE(b.AddEdge(2, 3).ok());  // C -> B
  ASSERT_TRUE(b.AddEdge(3, 2).ok());  // B -> C (revisit loop)
  ASSERT_TRUE(b.AddEdge(1, 4).ok());  // A leads away...
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  ASSERT_TRUE(b.AddEdge(5, 4).ok());  // ...for good
  Graph g = std::move(b.Build()).value();
  const double c = 0.9;
  const int d = 140;  // c^d remainder well below the 1e-6 tolerance
  DhtParams ppr = DhtParams::PersonalizedPageRank(c);
  DhtParams dht = DhtParams::Lambda(0.9);
  ForwardWalker w(g);
  EXPECT_GT(w.Compute(dht, d, ExtNodeId(0), ExtNodeId(1)),
            w.Compute(dht, d, ExtNodeId(0), ExtNodeId(3)));  // A > B
  double ppr_a = w.Compute(ppr, d, ExtNodeId(0), ExtNodeId(1));
  double ppr_b = w.Compute(ppr, d, ExtNodeId(0), ExtNodeId(3));
  EXPECT_LT(ppr_a, ppr_b);  // B > A: ranking reversed
  // And both match their closed forms.
  EXPECT_NEAR(ppr_a, (1 - c) * c / 2, 1e-6);
  EXPECT_NEAR(ppr_b, c * c / (2 * (1 + c)), 1e-6);
}

}  // namespace
}  // namespace dhtjoin
