/// \file tools/dhtlint_lib.h
/// \brief Repo-specific determinism lint rules (the `dhtlint` gate).
///
/// The engine's central guarantee — bit-identical DHT scores across
/// lane widths, thread counts, physical layouts, and resume schedules
/// (DESIGN.md §3, §7, §8) — depends on invariants the compiler cannot
/// check: floating-point accumulation order must be canonical, seeds
/// must flow through the deterministic Rng, node-id spaces must not be
/// mixed. The runtime byte-identity suites catch violations only when
/// a test happens to exercise the divergent order; dhtlint catches the
/// *pattern* at review time. Rules (DESIGN.md §10):
///
///  * unordered-iter    — no iteration over std::unordered_map/set in
///                        engine code (src/): hash order feeding an FP
///                        accumulation or ordered output is the classic
///                        nondeterminism bug; go through SortCanonical
///                        or the sorted support lists instead.
///  * raw-rng           — no rand()/srand()/std::random_device/time()/
///                        wall-clock seeding outside util/rng.h,
///                        util/timer.*, and bench/: all randomness
///                        flows through the seeded, deterministic Rng.
///  * float-accum       — no `float` in engine code: scores and
///                        accumulators are double (Sec. III of the
///                        paper fixes the measure in doubles; float
///                        intermediates change results per layout).
///  * raw-id-param      — no bare NodeId/int32_t node parameters in
///                        public engine headers: boundaries take
///                        ExtNodeId/IntNodeId so external-vs-internal
///                        mixing is a compile error (graph/node_id.h).
///  * mutable-static    — no mutable static or thread_local state in
///                        src/dht/ + src/join2/ hot paths: hidden
///                        cross-query state breaks resume parity and
///                        the sanitizer jobs' independence assumptions.
///
/// Suppressions: a finding is waived by a comment on the same line or
/// the line above:
///     // dhtlint: allow(<rule>): <reason>
/// The reason is REQUIRED — a bare allow() is itself a finding
/// (bad-suppression). Whole-file waivers (for documented raw-interior
/// headers like dht/propagate.h) use:
///     // dhtlint: allow-file(<rule>): <reason>
///
/// The scanner is line-based and intentionally conservative: it may
/// need a justified suppression on exotic-but-legal code, but it
/// cannot be silently bypassed by formatting. Comments and string
/// literals are stripped before pattern matching, so prose mentioning
/// `rand()` does not trip the gate.

#ifndef DHTJOIN_TOOLS_DHTLINT_LIB_H_
#define DHTJOIN_TOOLS_DHTLINT_LIB_H_

#include <string>
#include <vector>

namespace dhtjoin::lint {

/// One lint hit, suppressed or not.
struct Finding {
  std::string file;     ///< path label as given to LintSource
  int line = 0;         ///< 1-based
  std::string rule;     ///< e.g. "raw-rng"
  std::string message;  ///< human-readable explanation
  bool suppressed = false;
  std::string reason;   ///< suppression reason when suppressed
};

/// Result of linting one or more sources.
struct LintResult {
  std::vector<Finding> findings;

  /// Findings that are NOT suppressed (the gate count).
  int NumUnsuppressed() const;
};

/// All rule names, in report order.
const std::vector<std::string>& RuleNames();

/// Lints one translation unit. `path` scopes the path-dependent rules
/// (e.g. raw-rng's util/rng allowlist) and labels findings; `content`
/// is the full source text. Pure function — no filesystem access, so
/// tests can feed snippets under pseudo-paths.
LintResult LintSource(const std::string& path, const std::string& content);

/// Merges `b` into `a`.
void Merge(LintResult* a, const LintResult& b);

/// Machine-readable report: one JSON document with per-rule counts and
/// the full findings list (suppressed included, marked).
std::string ReportJson(const LintResult& result);

/// True when dhtlint wants to scan this repo-relative path at all
/// (C++ sources under src/ and tools/, excluding dhtlint's own
/// fixtures and tests).
bool DefaultScanPath(const std::string& path);

}  // namespace dhtjoin::lint

#endif  // DHTJOIN_TOOLS_DHTLINT_LIB_H_
