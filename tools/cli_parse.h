/// \file tools/cli_parse.h
/// \brief Argument parsing helpers for the dhtjoin command-line tool.
///
/// Kept separate from the main() so the parsing rules are unit-testable
/// (tests/cli_parse_test.cc).

#ifndef DHTJOIN_TOOLS_CLI_PARSE_H_
#define DHTJOIN_TOOLS_CLI_PARSE_H_

#include <map>
#include <string>
#include <vector>

#include "dht/params.h"
#include "rankjoin/pbrj.h"
#include "util/status.h"

namespace dhtjoin::cli {

/// "--key value" and "--flag" arguments after the subcommand.
struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> options;

  /// Value of --key, or `fallback` when absent.
  std::string Get(const std::string& key, const std::string& fallback) const;
  bool Has(const std::string& key) const;
};

/// Splits argv into subcommand + --key value pairs. A "--key" followed
/// by another "--..." or end-of-args is treated as a boolean flag.
Result<ParsedArgs> ParseArgs(int argc, const char* const* argv);

/// Parses a measure spec:
///   "dhtlambda" | "dhtlambda:0.4" | "dhte" | "ppr" | "ppr:0.9"
Result<DhtParams> ParseMeasure(const std::string& spec);

/// One parsed query-graph edge over set names.
struct QueryEdgeSpec {
  std::string from;
  std::string to;
  bool bidirectional;
};

/// Parses a query spec: comma-separated edges, "A>B" directed or "A-B"
/// bidirectional, e.g. "DB-AI,AI>SYS".
Result<std::vector<QueryEdgeSpec>> ParseQuerySpec(const std::string& spec);

/// Parses a positive integer.
Result<int64_t> ParsePositiveInt(const std::string& text,
                                 const std::string& what);

/// Parses one EXTERNAL node id. Rejects non-numeric text, negative
/// ids, and — when `num_nodes` >= 0 — ids outside [0, num_nodes), each
/// with a message naming the offending value. Parsing returns the
/// TYPED id so a raw CLI integer cannot drift into an internal-space
/// API (graph/node_id.h).
Result<ExtNodeId> ParseNodeId(const std::string& text,
                              const std::string& what, NodeId num_nodes);

/// Parses a comma-separated external node-id list ("3,1,17") with the
/// same per-id validation. Empty list is an error.
Result<std::vector<ExtNodeId>> ParseNodeList(const std::string& text,
                                             const std::string& what,
                                             NodeId num_nodes);

}  // namespace dhtjoin::cli

#endif  // DHTJOIN_TOOLS_CLI_PARSE_H_
