#include "tools/cli_parse.h"

#include <cstdlib>

namespace dhtjoin::cli {

std::string ParsedArgs::Get(const std::string& key,
                            const std::string& fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

bool ParsedArgs::Has(const std::string& key) const {
  return options.contains(key);
}

Result<ParsedArgs> ParseArgs(int argc, const char* const* argv) {
  if (argc < 2) {
    return Status::InvalidArgument("missing subcommand");
  }
  ParsedArgs out;
  out.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("expected --option, got '" + arg + "'");
    }
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.options[key] = argv[++i];
    } else {
      out.options[key] = "";  // boolean flag
    }
  }
  return out;
}

Result<DhtParams> ParseMeasure(const std::string& spec) {
  auto colon = spec.find(':');
  std::string name = spec.substr(0, colon);
  std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto parse_param = [&](double fallback) -> Result<double> {
    if (arg.empty()) return fallback;
    char* end = nullptr;
    double v = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || *end != '\0' || !(v > 0.0) || !(v < 1.0)) {
      return Status::InvalidArgument("measure parameter must be in (0,1): '" +
                                     arg + "'");
    }
    return v;
  };
  if (name == "dhtlambda") {
    DHTJOIN_ASSIGN_OR_RETURN(double lambda, parse_param(0.2));
    return DhtParams::Lambda(lambda);
  }
  if (name == "dhte") {
    if (!arg.empty()) {
      return Status::InvalidArgument("dhte takes no parameter");
    }
    return DhtParams::Exponential();
  }
  if (name == "ppr") {
    DHTJOIN_ASSIGN_OR_RETURN(double c, parse_param(0.85));
    return DhtParams::PersonalizedPageRank(c);
  }
  return Status::InvalidArgument(
      "unknown measure '" + name +
      "' (expected dhtlambda[:l] | dhte | ppr[:c])");
}

Result<std::vector<QueryEdgeSpec>> ParseQuerySpec(const std::string& spec) {
  std::vector<QueryEdgeSpec> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    std::string edge = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (edge.empty()) continue;
    auto arrow = edge.find('>');
    auto dash = edge.find('-');
    std::size_t sep;
    bool bidirectional;
    if (arrow != std::string::npos) {
      sep = arrow;
      bidirectional = false;
    } else if (dash != std::string::npos) {
      sep = dash;
      bidirectional = true;
    } else {
      return Status::InvalidArgument("query edge '" + edge +
                                     "' needs 'A>B' or 'A-B'");
    }
    std::string from = edge.substr(0, sep);
    std::string to = edge.substr(sep + 1);
    if (from.empty() || to.empty()) {
      return Status::InvalidArgument("query edge '" + edge +
                                     "' has an empty endpoint");
    }
    out.push_back(QueryEdgeSpec{from, to, bidirectional});
  }
  if (out.empty()) {
    return Status::InvalidArgument("query spec has no edges");
  }
  return out;
}

Result<int64_t> ParsePositiveInt(const std::string& text,
                                 const std::string& what) {
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v <= 0) {
    return Status::InvalidArgument(what + " must be a positive integer, got '" +
                                   text + "'");
  }
  return static_cast<int64_t>(v);
}

Result<ExtNodeId> ParseNodeId(const std::string& text,
                              const std::string& what, NodeId num_nodes) {
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(what + " must be an integer node id, got '" +
                                   text + "'");
  }
  if (v < 0) {
    return Status::InvalidArgument(what + " node id must be non-negative, got " +
                                   text);
  }
  if (num_nodes >= 0 && v >= static_cast<long long>(num_nodes)) {
    return Status::InvalidArgument(
        what + " node id " + text + " out of range [0, " +
        std::to_string(num_nodes) + ")");
  }
  return ExtNodeId(static_cast<NodeId>(v));
}

Result<std::vector<ExtNodeId>> ParseNodeList(const std::string& text,
                                             const std::string& what,
                                             NodeId num_nodes) {
  std::vector<ExtNodeId> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    auto comma = text.find(',', pos);
    std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) {
      DHTJOIN_ASSIGN_OR_RETURN(ExtNodeId id,
                               ParseNodeId(item, what, num_nodes));
      out.push_back(id);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) {
    return Status::InvalidArgument(what + " node list is empty: '" + text +
                                   "'");
  }
  return out;
}

}  // namespace dhtjoin::cli
