#!/usr/bin/env bash
# Static-analysis driver: dhtlint + clang-tidy (DESIGN.md §10).
#
#   tools/run_analysis.sh [--build-dir DIR] [--changed-only] [--no-tidy]
#
# dhtlint always runs (built from tools/dhtlint.cc if missing).
# clang-tidy runs over build/compile_commands.json when the binary is
# available; otherwise it is skipped with a notice — the container used
# for local byte-identity runs does not ship clang-tidy, CI installs it.
#
# --changed-only restricts both passes to files touched relative to the
# merge base with origin/main (falls back to HEAD~1, then to everything).
set -u

BUILD_DIR=build
CHANGED_ONLY=0
RUN_TIDY=1
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --changed-only) CHANGED_ONLY=1; shift ;;
    --no-tidy) RUN_TIDY=0; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
STATUS=0

# ---------------------------------------------------------------- file set
CHANGED_FILES=()
if [ "$CHANGED_ONLY" = 1 ]; then
  BASE=$(git merge-base origin/main HEAD 2>/dev/null || git rev-parse HEAD~1 2>/dev/null || true)
  if [ -n "$BASE" ]; then
    while IFS= read -r f; do
      case "$f" in
        src/*.cc|src/*.h|tools/*.cc|tools/*.h) [ -f "$f" ] && CHANGED_FILES+=("$f") ;;
      esac
    done < <(git diff --name-only "$BASE" -- 'src' 'tools')
    if [ ${#CHANGED_FILES[@]} -eq 0 ]; then
      echo "run_analysis: no changed C++ sources since $BASE — nothing to lint."
      exit 0
    fi
    echo "run_analysis: restricting to ${#CHANGED_FILES[@]} changed file(s)."
  else
    echo "run_analysis: no merge base found, scanning everything." >&2
  fi
fi

# ----------------------------------------------------------------- dhtlint
DHTLINT="$BUILD_DIR/dhtlint"
if [ ! -x "$DHTLINT" ]; then
  echo "run_analysis: building dhtlint..."
  if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake --build "$BUILD_DIR" --target dhtlint >/dev/null || STATUS=1
  fi
fi
if [ ! -x "$DHTLINT" ]; then
  # Last resort: direct compile, no CMake configure required.
  mkdir -p "$BUILD_DIR"
  c++ -std=c++20 -O1 -I. tools/dhtlint.cc tools/dhtlint_lib.cc -o "$DHTLINT" || {
    echo "run_analysis: FAILED to build dhtlint" >&2
    exit 1
  }
fi

echo "== dhtlint =="
if [ ${#CHANGED_FILES[@]} -gt 0 ]; then
  "$DHTLINT" --root "$ROOT" --report "$BUILD_DIR/dhtlint_report.json" "${CHANGED_FILES[@]}" || STATUS=1
else
  "$DHTLINT" --root "$ROOT" --report "$BUILD_DIR/dhtlint_report.json" || STATUS=1
fi

# -------------------------------------------------------------- clang-tidy
if [ "$RUN_TIDY" = 1 ]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_analysis: clang-tidy not found — skipping (CI installs it)."
  elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_analysis: $BUILD_DIR/compile_commands.json missing — configure CMake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)." >&2
    STATUS=1
  else
    echo "== clang-tidy =="
    TIDY_FILES=()
    if [ ${#CHANGED_FILES[@]} -gt 0 ]; then
      for f in "${CHANGED_FILES[@]}"; do
        case "$f" in *.cc) TIDY_FILES+=("$f") ;; esac
      done
    else
      while IFS= read -r f; do TIDY_FILES+=("$f"); done \
        < <(git ls-files 'src/*.cc' 'tools/*.cc' | grep -v 'lint_fixtures')
    fi
    if [ ${#TIDY_FILES[@]} -gt 0 ]; then
      clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_FILES[@]}" || STATUS=1
    else
      echo "run_analysis: no .cc files for clang-tidy."
    fi
  fi
fi

exit $STATUS
