#include "tools/dhtlint_lib.h"

#include <cctype>
#include <cstdio>
#include <regex>
#include <sstream>

namespace dhtjoin::lint {
namespace {

/// Splits into lines (without terminators).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Replaces comments and string/char literals with spaces, line by
/// line, preserving line numbers and column widths. Block-comment
/// state carries across lines.
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Suppression directives found in the raw (unstripped) lines.
struct Suppressions {
  // (comment line, (rule, reason)) — see LineReason for the reach.
  std::vector<std::pair<int, std::pair<std::string, std::string>>>
      line_allows;
  std::vector<std::pair<std::string, std::string>> file_allows;  // rule,reason
  std::vector<Finding> bad;  // allow() without a reason

  // An allow on line K waives findings of its rule on K itself and the
  // following declaration — up to kReach lines below, so a multi-line
  // suppression comment above a multi-line signature still lands.
  static constexpr int kReach = 4;

  const std::string* LineReason(int line, const std::string& rule) const {
    for (const auto& [allow_line, entry] : line_allows) {
      if (entry.first == rule && line >= allow_line &&
          line <= allow_line + kReach) {
        return &entry.second;
      }
    }
    return nullptr;
  }
  const std::string* FileReason(const std::string& rule) const {
    for (const auto& [r, reason] : file_allows) {
      if (r == rule) return &reason;
    }
    return nullptr;
  }
};

Suppressions CollectSuppressions(const std::string& path,
                                 const std::vector<std::string>& lines) {
  static const std::regex kAllow(
      R"(//\s*dhtlint:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)\s*(:\s*(.*))?)");
  Suppressions sup;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kAllow)) continue;
    const bool file_scope = m[1].matched;
    const std::string rule = m[2].str();
    std::string reason = m[4].matched ? m[4].str() : "";
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(
                                  reason.back()))) {
      reason.pop_back();
    }
    if (reason.empty()) {
      sup.bad.push_back(Finding{
          path, static_cast<int>(i + 1), "bad-suppression",
          "dhtlint suppression of '" + rule +
              "' has no reason; write `// dhtlint: allow(" + rule +
              "): <why this is safe>`",
          false, ""});
      continue;
    }
    if (file_scope) {
      sup.file_allows.emplace_back(rule, reason);
    } else {
      sup.line_allows.emplace_back(static_cast<int>(i + 1),
                                    std::make_pair(rule, reason));
    }
  }
  return sup;
}

// ------------------------------------------------------------- rules

/// Names of variables/members declared with an unordered container
/// type anywhere in the file (line-based heuristic: declaration and
/// name on one line, the overwhelmingly common case under clang-format).
std::vector<std::string> UnorderedVarNames(
    const std::vector<std::string>& code) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<.*>\s+([A-Za-z_]\w*))");
  std::vector<std::string> names;
  for (const std::string& line : code) {
    std::smatch m;
    std::string rest = line;
    while (std::regex_search(rest, m, kDecl)) {
      names.push_back(m[1].str());
      rest = m.suffix().str();
    }
  }
  return names;
}

void RuleUnorderedIter(const std::string& path,
                       const std::vector<std::string>& code,
                       std::vector<Finding>* out) {
  if (!StartsWith(path, "src/")) return;
  const std::vector<std::string> names = UnorderedVarNames(code);
  if (names.empty()) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (const std::string& name : names) {
      const bool range_for =
          Contains(line, "for") &&
          std::regex_search(line, std::regex(R"(:\s*)" + name + R"(\s*\))"));
      const bool iter_begin =
          std::regex_search(line, std::regex(name + R"(\s*\.\s*begin\s*\()"));
      if (range_for || iter_begin) {
        out->push_back(Finding{
            path, static_cast<int>(i + 1), "unordered-iter",
            "iteration over unordered container '" + name +
                "': hash order is nondeterministic; sort first "
                "(SortCanonical / sorted supports) or justify "
                "order-insensitivity in a suppression",
            false, ""});
        break;
      }
    }
  }
}

void RuleRawRng(const std::string& path,
                const std::vector<std::string>& code,
                std::vector<Finding>* out) {
  if (Contains(path, "util/rng") || Contains(path, "util/timer") ||
      StartsWith(path, "bench/")) {
    return;
  }
  static const std::regex kPatterns[] = {
      std::regex(R"(\brand\s*\()"),
      std::regex(R"(\bsrand\s*\()"),
      std::regex(R"(\brandom_device\b)"),
      std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))"),
      std::regex(R"(\bgettimeofday\s*\()"),
      std::regex(R"(\bsystem_clock\b)"),
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const std::regex& re : kPatterns) {
      if (std::regex_search(code[i], re)) {
        out->push_back(Finding{
            path, static_cast<int>(i + 1), "raw-rng",
            "raw randomness / wall-clock source: all seeding flows "
            "through util/rng.h (deterministic, seedable) or "
            "util/timer.h (measurement only)",
            false, ""});
        break;
      }
    }
  }
}

void RuleRawClock(const std::string& path,
                  const std::vector<std::string>& code,
                  std::vector<Finding>* out) {
  // Timing in the engine flows through obs::Clock (injectable: tests
  // substitute a FakeClock, DHT_OBS_OFF compiles the reads out).
  // obs/clock.h IS the one sanctioned raw read; util/timer.h and
  // util/deadline.h carry explicit allow-file suppressions instead of
  // a path skip so their justification lives next to the code.
  if (!StartsWith(path, "src/")) return;
  if (Contains(path, "obs/clock")) return;
  static const std::regex kPatterns[] = {
      std::regex(R"(\bsteady_clock\b)"),
      std::regex(R"(\bhigh_resolution_clock\b)"),
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const std::regex& re : kPatterns) {
      if (std::regex_search(code[i], re)) {
        out->push_back(Finding{
            path, static_cast<int>(i + 1), "raw-clock",
            "raw chrono clock read in engine code: inject an "
            "obs::Clock (obs/clock.h) so tests control time and "
            "DHT_OBS_OFF can compile timing out (DESIGN.md §11)",
            false, ""});
        break;
      }
    }
  }
}

void RuleFloatAccum(const std::string& path,
                    const std::vector<std::string>& code,
                    std::vector<Finding>* out) {
  if (!StartsWith(path, "src/")) return;
  static const std::regex kFloat(R"(\bfloat\b)");
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (std::regex_search(code[i], kFloat)) {
      out->push_back(Finding{
          path, static_cast<int>(i + 1), "float-accum",
          "`float` in engine code: DHT scores and accumulators are "
          "double end to end; float intermediates change results "
          "across layouts and lane widths",
          false, ""});
    }
  }
}

void RuleRawIdParam(const std::string& path,
                    const std::vector<std::string>& code,
                    std::vector<Finding>* out) {
  // Public engine boundaries are the headers; .cc internals are free
  // to use raw ids (they index storage).
  if (!StartsWith(path, "src/") || !path.ends_with(".h")) return;
  static const std::regex kParam(
      R"([(,]\s*(?:const\s+)?(?:NodeId|int32_t)\s+[A-Za-z_]\w*\s*[,)=])");
  // Loop inits (`for (NodeId u = 0; ...)`) and comparator lambdas
  // (`[](NodeId a, NodeId b)`) are local raw-id use, not API surface.
  static const std::regex kForInit(R"(\bfor\s*\()");
  static const std::regex kLambda(R"(\]\s*\()");
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (std::regex_search(code[i], kForInit) ||
        std::regex_search(code[i], kLambda)) {
      continue;
    }
    if (std::regex_search(code[i], kParam)) {
      out->push_back(Finding{
          path, static_cast<int>(i + 1), "raw-id-param",
          "bare NodeId/int32_t node parameter in a public engine "
          "header: boundaries take ExtNodeId/IntNodeId "
          "(graph/node_id.h) so id-space mixing cannot compile",
          false, ""});
    }
  }
}

void RuleMutableStatic(const std::string& path,
                       const std::vector<std::string>& code,
                       std::vector<Finding>* out) {
  if (!StartsWith(path, "src/dht/") && !StartsWith(path, "src/join2/")) {
    return;
  }
  // `static` variable declarations that are not const/constexpr, plus
  // any thread_local. Function declarations (static helpers) are fine:
  // heuristically, a declaration whose identifier is immediately
  // followed by '(' is a function.
  static const std::regex kStaticVar(
      R"(^\s*(?:inline\s+)?static\s+(?!const\b|constexpr\b|_assert|_cast))"
      R"((?:[\w:<>,\s]+?)\s+[A-Za-z_]\w*\s*(?:=|;|\{))");
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const bool tl = std::regex_search(line, std::regex(R"(\bthread_local\b)"));
    const bool sv = std::regex_search(line, kStaticVar) &&
                    !Contains(line, "static_assert") &&
                    !Contains(line, "static_cast");
    if (tl || sv) {
      out->push_back(Finding{
          path, static_cast<int>(i + 1), "mutable-static",
          "mutable static / thread_local state in a hot path: hidden "
          "cross-query state breaks resume parity (DESIGN.md §3); "
          "thread state lives in explicit per-walk/per-batch objects",
          false, ""});
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int LintResult::NumUnsuppressed() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = {
      "unordered-iter", "raw-rng",        "raw-clock",
      "float-accum",    "raw-id-param",   "mutable-static",
      "bad-suppression",
  };
  return kNames;
}

LintResult LintSource(const std::string& path, const std::string& content) {
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> code = StripCommentsAndStrings(raw);
  const Suppressions sup = CollectSuppressions(path, raw);

  std::vector<Finding> hits;
  RuleUnorderedIter(path, code, &hits);
  RuleRawRng(path, code, &hits);
  RuleRawClock(path, code, &hits);
  RuleFloatAccum(path, code, &hits);
  RuleRawIdParam(path, code, &hits);
  RuleMutableStatic(path, code, &hits);

  LintResult result;
  for (Finding& f : hits) {
    if (const std::string* reason = sup.FileReason(f.rule)) {
      f.suppressed = true;
      f.reason = *reason;
    } else if (const std::string* line_reason =
                   sup.LineReason(f.line, f.rule)) {
      f.suppressed = true;
      f.reason = *line_reason;
    }
    result.findings.push_back(std::move(f));
  }
  for (const Finding& f : sup.bad) result.findings.push_back(f);
  return result;
}

void Merge(LintResult* a, const LintResult& b) {
  a->findings.insert(a->findings.end(), b.findings.begin(),
                     b.findings.end());
}

std::string ReportJson(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"rule_counts\": {";
  bool first = true;
  for (const std::string& rule : RuleNames()) {
    int total = 0, suppressed = 0;
    for (const Finding& f : result.findings) {
      if (f.rule != rule) continue;
      ++total;
      if (f.suppressed) ++suppressed;
    }
    os << (first ? "" : ",") << "\n    \"" << rule
       << "\": {\"total\": " << total << ", \"suppressed\": " << suppressed
       << "}";
    first = false;
  }
  os << "\n  },\n  \"unsuppressed\": " << result.NumUnsuppressed()
     << ",\n  \"findings\": [";
  first = true;
  for (const Finding& f : result.findings) {
    os << (first ? "" : ",") << "\n    {\"file\": \"" << JsonEscape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
       << "\", \"suppressed\": " << (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      os << ", \"reason\": \"" << JsonEscape(f.reason) << "\"";
    }
    os << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool DefaultScanPath(const std::string& path) {
  const bool cpp = path.ends_with(".cc") || path.ends_with(".h") ||
                   path.ends_with(".cpp") || path.ends_with(".hpp");
  if (!cpp) return false;
  if (Contains(path, "lint_fixtures")) return false;
  return StartsWith(path, "src/") ||
         (StartsWith(path, "tools/") && !Contains(path, "dhtlint"));
}

}  // namespace dhtjoin::lint
