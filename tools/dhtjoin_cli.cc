/// \file tools/dhtjoin_cli.cc
/// \brief Command-line front end for the dhtjoin library.
///
/// Subcommands:
///   generate  --dataset yeast|dblp|youtube --out G.txt --sets S.txt
///             [--nodes N] [--seed S]
///   join2     --graph G.txt --sets S.txt --left NAME --right NAME
///             [--k 50] [--algo bidj-y|bidj-x|bbj|fbj|fidj]
///             [--measure dhtlambda[:l]|dhte|ppr[:c]] [--epsilon 1e-6]
///   njoin     --graph G.txt --sets S.txt --query "A-B,B>C"
///             [--agg min|sum] [--k 50] [--m 50]
///             [--algo pj-i|pj|ap|nl] [--measure ...] [--epsilon 1e-6]
///   serve     --graph G.txt --sets S.txt [--serve-workload zipf]
///             [--requests 200] [--templates 16] [--zipf 1.0]
///             [--set-size 100] [--k 50] [--threads N] [--cache-mb MB]
///             [--seed 17] [--measure ...] [--epsilon 1e-6]
///
/// Examples:
///   dhtjoin_cli generate --dataset yeast --out yeast.txt --sets sets.txt
///   dhtjoin_cli join2 --graph yeast.txt --sets sets.txt
///       --left 3-U --right 8-D --k 10
///   dhtjoin_cli njoin --graph yeast.txt --sets sets.txt
///       --query "3-U>8-D,8-D>3-U" --k 5
///   (set names containing '-' need '>' edges in --query)

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"
#include "datasets/yeast_like.h"
#include "datasets/youtube_like.h"
#include "graph/analysis.h"
#include "graph/reorder.h"
#include "obs/export.h"
#include "obs/json.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "tools/cli_parse.h"
#include "util/deadline.h"
#include "util/timer.h"

namespace dhtjoin::cli {
namespace {

constexpr char kUsage[] =
    "usage: dhtjoin_cli <generate|join2|njoin|serve|stats> "
    "[--option value]...\n"
    "  stats    --graph G.txt [--sets S.txt]\n"
    "  generate --dataset yeast|dblp|youtube --out G.txt --sets S.txt\n"
    "           [--nodes N] [--seed S]\n"
    "  join2    --graph G.txt --sets S.txt --left NAME --right NAME\n"
    "           [--k 50] [--algo bidj-y|bidj-x|bbj|fbj|fidj]\n"
    "           [--measure dhtlambda[:l]|dhte|ppr[:c]] [--epsilon 1e-6]\n"
    "           [--reorder none|degree|rcm]\n"
    "  njoin    --graph G.txt --sets S.txt --query \"A>B,B>C\"\n"
    "           [--agg min|sum] [--k 50] [--m 50]\n"
    "           [--algo pj-i|pj|ap|nl] [--measure ...] [--epsilon 1e-6]\n"
    "           [--reorder none|degree|rcm]\n"
    "  serve    --graph G.txt --sets S.txt [--serve-workload zipf]\n"
    "           [--requests 200] [--templates 16] [--zipf 1.0]\n"
    "           [--set-size 100] [--k 50] [--threads N] [--cache-mb MB]\n"
    "           [--admit-floor-bytes B] [--seed 17] [--measure ...]\n"
    "           [--epsilon 1e-6] [--reorder none|degree|rcm]\n"
    "           [--deadline-ms MS] [--max-in-flight N] [--max-cost C]\n"
    "           [--slow-ms MS] [--trace-out T.json]\n"
    "           [--metrics-out M.json] [--metrics-prom M.prom]\n"
    "           [--metrics-every N]\n";

Status Fail(const std::string& msg) { return Status::InvalidArgument(msg); }

/// Resolves `name` to a node set: a named set from --sets, or an
/// inline literal list of external node ids ("3,1,17"). Inline ids are
/// validated at parse time against the graph — negative or
/// out-of-range ids fail with a clear error instead of flowing into
/// the engines as raw ints (ParseNodeId returns typed ExtNodeId).
Result<NodeSet> FindSet(const std::vector<NodeSet>& sets, const Graph& g,
                        const std::string& name) {
  for (const NodeSet& s : sets) {
    if (s.name() == name) return s;
  }
  if (!name.empty() &&
      name.find_first_not_of("0123456789,-") == std::string::npos) {
    DHTJOIN_ASSIGN_OR_RETURN(
        std::vector<ExtNodeId> ids,
        ParseNodeList(name, "inline set", g.num_nodes()));
    return NodeSet(name, std::move(ids));
  }
  return Status::NotFound("node set '" + name + "' not found");
}

Status RunGenerate(const ParsedArgs& args) {
  std::string dataset = args.Get("dataset", "");
  std::string out_path = args.Get("out", "");
  std::string sets_path = args.Get("sets", "");
  if (dataset.empty() || out_path.empty() || sets_path.empty()) {
    return Fail("generate needs --dataset, --out and --sets");
  }
  uint64_t seed = 13;
  if (args.Has("seed")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t s,
                             ParsePositiveInt(args.Get("seed", ""), "seed"));
    seed = static_cast<uint64_t>(s);
  }

  Graph graph;
  std::vector<NodeSet> sets;
  if (dataset == "yeast") {
    datasets::YeastLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_nodes = static_cast<NodeId>(n);
      cfg.num_edges = 3 * n;
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateYeastLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.partitions);
  } else if (dataset == "dblp") {
    datasets::DblpLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_authors = static_cast<NodeId>(n);
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateDblpLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.areas);
  } else if (dataset == "youtube") {
    datasets::YouTubeLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_users = static_cast<NodeId>(n);
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateYouTubeLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.groups);
  } else {
    return Fail("unknown --dataset '" + dataset + "'");
  }

  DHTJOIN_RETURN_NOT_OK(SaveEdgeList(graph, out_path));
  DHTJOIN_RETURN_NOT_OK(SaveNodeSets(sets, sets_path));
  std::printf("wrote %d nodes / %lld edges to %s, %zu node sets to %s\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              out_path.c_str(), sets.size(), sets_path.c_str());
  return Status::OK();
}

struct LoadedInputs {
  Graph graph;
  std::vector<NodeSet> sets;
  DhtParams measure;
  int d;
};

Result<LoadedInputs> LoadCommon(const ParsedArgs& args) {
  std::string graph_path = args.Get("graph", "");
  std::string sets_path = args.Get("sets", "");
  if (graph_path.empty() || sets_path.empty()) {
    return Fail("need --graph and --sets");
  }
  LoadedInputs out;
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, LoadEdgeList(graph_path));
  // Optional cache-conscious relayout (graph/reorder.h). Results are
  // bit-identical in every layout — node sets, printed ids, and scores
  // are all external-id based; only the physical CSR changes.
  DHTJOIN_ASSIGN_OR_RETURN(ReorderKind reorder,
                           ParseReorderKind(args.Get("reorder", "none")));
  if (reorder != ReorderKind::kNone) {
    DHTJOIN_ASSIGN_OR_RETURN(out.graph, ReorderGraph(out.graph, reorder));
    std::printf("# graph relaid out: --reorder %s\n",
                ReorderKindName(reorder));
  }
  DHTJOIN_ASSIGN_OR_RETURN(out.sets, LoadNodeSets(sets_path));
  DHTJOIN_ASSIGN_OR_RETURN(out.measure,
                           ParseMeasure(args.Get("measure", "dhtlambda")));
  double epsilon = std::strtod(args.Get("epsilon", "1e-6").c_str(), nullptr);
  if (!(epsilon > 0.0)) return Fail("--epsilon must be positive");
  out.d = out.measure.StepsForEpsilon(epsilon);
  return out;
}

Status RunJoin2(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));
  DHTJOIN_ASSIGN_OR_RETURN(NodeSet P,
                           FindSet(in.sets, in.graph,
                                   args.Get("left", "")));
  DHTJOIN_ASSIGN_OR_RETURN(NodeSet Q,
                           FindSet(in.sets, in.graph,
                                   args.Get("right", "")));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));

  std::string algo = args.Get("algo", "bidj-y");
  std::unique_ptr<TwoWayJoin> join;
  if (algo == "bidj-y") {
    join = std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY});
  } else if (algo == "bidj-x") {
    join = std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX});
  } else if (algo == "bbj") {
    join = std::make_unique<BBjJoin>();
  } else if (algo == "fbj") {
    join = std::make_unique<FBjJoin>();
  } else if (algo == "fidj") {
    join = std::make_unique<FIdjJoin>();
  } else {
    return Fail("unknown --algo '" + algo + "'");
  }

  DHTJOIN_ASSIGN_OR_RETURN(
      auto pairs, join->Run(in.graph, in.measure, in.d, P, Q,
                            static_cast<std::size_t>(k)));
  std::printf("# top-%lld 2-way join %s x %s via %s (d=%d)\n",
              static_cast<long long>(k), P.name().c_str(),
              Q.name().c_str(), join->Name().c_str(), in.d);
  int rank = 1;
  for (const ScoredPair& sp : pairs) {
    std::printf("%4d  %8d %8d  %+.8f\n", rank++, sp.p, sp.q, sp.score);
  }
  // Machine-readable run counters, incl. the fused scheduler's
  // fork/join barriers (total and per deepening round). Rendered by
  // the shared export helper (obs/export.h) — byte-compatible with the
  // historical hand-rolled printf, asserted in tests/obs_test.cc.
  std::printf("# stats %s\n", obs::ToJson(join->stats()).c_str());
  return Status::OK();
}

Status RunNjoin(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));
  DHTJOIN_ASSIGN_OR_RETURN(auto edge_specs,
                           ParseQuerySpec(args.Get("query", "")));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t m,
                           ParsePositiveInt(args.Get("m", "50"), "m"));

  QueryGraph query;
  std::map<std::string, int> attr_of;
  auto attr = [&](const std::string& name) -> Result<int> {
    auto it = attr_of.find(name);
    if (it != attr_of.end()) return it->second;
    DHTJOIN_ASSIGN_OR_RETURN(NodeSet set, FindSet(in.sets, in.graph, name));
    int a = query.AddNodeSet(std::move(set));
    attr_of[name] = a;
    return a;
  };
  for (const QueryEdgeSpec& e : edge_specs) {
    DHTJOIN_ASSIGN_OR_RETURN(int from, attr(e.from));
    DHTJOIN_ASSIGN_OR_RETURN(int to, attr(e.to));
    if (e.bidirectional) {
      DHTJOIN_RETURN_NOT_OK(query.AddBidirectionalEdge(from, to));
    } else {
      DHTJOIN_RETURN_NOT_OK(query.AddEdge(from, to));
    }
  }

  std::string agg_name = args.Get("agg", "min");
  MinAggregate min_f;
  SumAggregate sum_f;
  const Aggregate* f = nullptr;
  if (agg_name == "min") {
    f = &min_f;
  } else if (agg_name == "sum") {
    f = &sum_f;
  } else {
    return Fail("unknown --agg '" + agg_name + "'");
  }

  std::string algo = args.Get("algo", "pj-i");
  std::unique_ptr<NwayJoin> join;
  if (algo == "pj-i") {
    join = std::make_unique<PartialJoin>(PartialJoin::Options{
        .m = static_cast<std::size_t>(m), .incremental = true});
  } else if (algo == "pj") {
    join = std::make_unique<PartialJoin>(PartialJoin::Options{
        .m = static_cast<std::size_t>(m), .incremental = false});
  } else if (algo == "ap") {
    join = std::make_unique<AllPairsJoin>();
  } else if (algo == "nl") {
    join = std::make_unique<NestedLoopJoin>();
  } else {
    return Fail("unknown --algo '" + algo + "'");
  }

  DHTJOIN_ASSIGN_OR_RETURN(
      auto tuples, join->Run(in.graph, in.measure, in.d, query, *f,
                             static_cast<std::size_t>(k)));
  std::printf("# top-%lld %d-way join via %s, f=%s (d=%d)\n",
              static_cast<long long>(k), query.num_sets(),
              join->Name().c_str(), f->Name().c_str(), in.d);
  int rank = 1;
  for (const TupleAnswer& t : tuples) {
    std::printf("%4d ", rank++);
    for (NodeId u : t.nodes) std::printf(" %8d", u);
    std::printf("  %+.8f\n", t.f);
  }
  return Status::OK();
}

/// Serving mode: generate a repeated-query workload over the loaded
/// node sets and drive it through a DhtJoinService, reporting warm
/// throughput and cache behaviour. `--serve-workload` picks the
/// generator (only "zipf" today); `--threads` > 1 executes the stream
/// as concurrent sessions.
Status RunServe(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));

  std::string kind = args.Get("serve-workload", "zipf");
  if (kind != "zipf") {
    return Fail("unknown --serve-workload '" + kind + "' (try: zipf)");
  }
  serve::WorkloadOptions wopts;
  DHTJOIN_ASSIGN_OR_RETURN(
      int64_t requests, ParsePositiveInt(args.Get("requests", "200"),
                                         "requests"));
  DHTJOIN_ASSIGN_OR_RETURN(
      int64_t templates, ParsePositiveInt(args.Get("templates", "16"),
                                          "templates"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t set_size,
                           ParsePositiveInt(args.Get("set-size", "100"),
                                            "set-size"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t seed,
                           ParsePositiveInt(args.Get("seed", "17"), "seed"));
  wopts.num_requests = static_cast<std::size_t>(requests);
  wopts.num_templates = static_cast<std::size_t>(templates);
  wopts.set_size = static_cast<std::size_t>(set_size);
  wopts.k = static_cast<std::size_t>(k);
  wopts.seed = static_cast<uint64_t>(seed);
  wopts.zipf_s = std::strtod(args.Get("zipf", "1.0").c_str(), nullptr);
  if (wopts.zipf_s < 0.0) return Fail("--zipf must be non-negative");

  DHTJOIN_ASSIGN_OR_RETURN(
      auto workload,
      serve::GenerateZipfianTwoWayWorkload(in.graph, in.sets, wopts));

  serve::DhtJoinService::Options sopts;
  if (args.Has("threads")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t threads, ParsePositiveInt(args.Get("threads", ""),
                                          "threads"));
    sopts.num_threads = static_cast<int>(threads);
  }
  if (args.Has("cache-mb")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t mb, ParsePositiveInt(args.Get("cache-mb", ""), "cache-mb"));
    sopts.cache_budget_bytes = static_cast<std::size_t>(mb) << 20;
  }
  if (args.Has("admit-floor-bytes")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t floor, ParsePositiveInt(args.Get("admit-floor-bytes", ""),
                                        "admit-floor-bytes"));
    sopts.cache_admission_bypass_bytes = static_cast<std::size_t>(floor);
  }
  // Lifecycle flags: per-query deadline and admission gates
  // (serve/admission.h). Deadline-hit queries return DEGRADED partial
  // answers (counted below), they do not fail the run; admission-shed
  // queries resolve with kResourceExhausted.
  int64_t deadline_ms = 0;
  if (args.Has("deadline-ms")) {
    DHTJOIN_ASSIGN_OR_RETURN(deadline_ms,
                             ParsePositiveInt(args.Get("deadline-ms", ""),
                                              "deadline-ms"));
  }
  if (args.Has("max-in-flight")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t cap, ParsePositiveInt(args.Get("max-in-flight", ""),
                                      "max-in-flight"));
    sopts.admission.max_in_flight = cap;
  }
  if (args.Has("max-cost")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t ceiling,
                             ParsePositiveInt(args.Get("max-cost", ""),
                                              "max-cost"));
    sopts.admission.max_estimated_cost = ceiling;
  }
  // Observability export surface (obs/export.h, DESIGN.md §11).
  // --slow-ms turns on per-query span tracing and retains the span
  // trees of queries at or above the threshold in the ring-buffered
  // slow-query log; --trace-out alone captures every traced query.
  const std::string metrics_out = args.Get("metrics-out", "");
  const std::string metrics_prom = args.Get("metrics-prom", "");
  const std::string trace_out = args.Get("trace-out", "");
  int64_t metrics_every = 0;
  if (args.Has("metrics-every")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        metrics_every,
        ParsePositiveInt(args.Get("metrics-every", ""), "metrics-every"));
  }
  if (args.Has("slow-ms")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t slow_ms,
        ParsePositiveInt(args.Get("slow-ms", ""), "slow-ms"));
    sopts.trace_queries = true;
    sopts.slow_query_nanos = slow_ms * 1000000;
  } else if (!trace_out.empty()) {
    sopts.trace_queries = true;
    sopts.slow_query_nanos = 1;  // no threshold given: capture everything
  }
  serve::DhtJoinService service(in.graph, in.measure, in.d, sopts);

  // One snapshot, both formats — the JSON and Prometheus dumps always
  // describe the same instant. Runs again at exit so the final files
  // cover the whole run even without --metrics-every.
  auto flush_observability = [&] {
    if (!metrics_out.empty() || !metrics_prom.empty()) {
      const obs::MetricsSnapshot snap = service.SnapshotMetrics();
      if (!metrics_out.empty()) {
        obs::WriteJsonFile(metrics_out, obs::ToJson(snap));
      }
      if (!metrics_prom.empty()) {
        obs::WriteJsonFile(metrics_prom, obs::ToPrometheusText(snap));
      }
    }
    if (!trace_out.empty()) {
      obs::WriteJsonFile(trace_out, service.slow_queries().ToJson());
    }
  };

  std::printf("# serving %zu requests over %zu templates (zipf %.2f, "
              "|sets| trimmed to %zu, k=%zu, d=%d, %s)\n",
              workload.requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k, in.d,
              sopts.num_threads == 1 ? "sequential" : "concurrent sessions");

  auto make_exec = [&]() -> std::shared_ptr<ExecContext> {
    if (deadline_ms == 0) return nullptr;
    auto exec = std::make_shared<ExecContext>();
    exec->deadline = Deadline::AfterMillis(deadline_ms);
    return exec;
  };

  WallTimer timer;
  int64_t shed = 0;
  int64_t completed = 0;
  auto maybe_flush = [&] {
    if (metrics_every > 0 && ++completed % metrics_every == 0) {
      flush_observability();
    }
  };
  if (sopts.num_threads == 1) {
    for (const serve::TwoWayRequest& req : workload.requests) {
      auto exec = make_exec();
      DHTJOIN_ASSIGN_OR_RETURN(
          auto result,
          service.TwoWay(req.P, req.Q, req.k, nullptr, exec.get()));
      (void)result;
      maybe_flush();
    }
  } else {
    std::vector<std::future<Result<std::vector<ScoredPair>>>> futures;
    std::vector<std::shared_ptr<ExecContext>> execs;
    futures.reserve(workload.requests.size());
    execs.reserve(workload.requests.size());
    for (const serve::TwoWayRequest& req : workload.requests) {
      serve::QueryOptions qopts;
      qopts.exec = make_exec();
      execs.push_back(qopts.exec);
      futures.push_back(
          service.SubmitTwoWay(req.P, req.Q, req.k, std::move(qopts)));
    }
    for (auto& f : futures) {
      Status status = f.get().status();
      if (status.code() == StatusCode::kResourceExhausted) {
        ++shed;  // expected under admission pressure; counted, not fatal
      } else {
        DHTJOIN_RETURN_NOT_OK(status);
      }
      maybe_flush();
    }
  }
  const double seconds = timer.Seconds();

  serve::CacheStats stats = service.cache_stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  std::printf("served %zu queries in %.3f s (%.3f ms/query, %.1f qps)\n",
              workload.requests.size(), seconds,
              seconds * 1e3 / static_cast<double>(workload.requests.size()),
              static_cast<double>(workload.requests.size()) /
                  (seconds > 0 ? seconds : 1e-9));
  std::printf("cache: %.1f%% hit rate (%lld hits / %lld misses), "
              "%lld evictions, %lld admission rejects, %zu entries, "
              "%.1f MB resident of %.1f MB\n",
              total > 0 ? 1e2 * static_cast<double>(stats.hits) / total : 0.0,
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              static_cast<long long>(stats.evictions),
              static_cast<long long>(stats.admission_rejects), stats.entries,
              static_cast<double>(stats.resident_bytes) / (1 << 20),
              static_cast<double>(service.cache().max_bytes()) / (1 << 20));
  // Machine-readable lifecycle counters (serve/admission.h,
  // ServiceStats): how many queries were shed at each gate, degraded
  // by deadline/effort, hard-cancelled, or hit a contained exception.
  serve::ServiceStats ss = service.service_stats();
  obs::JsonObject lifecycle;
  lifecycle.Set("admitted", static_cast<int64_t>(ss.admission.admitted))
      .Set("shed_capacity", static_cast<int64_t>(ss.admission.shed_capacity))
      .Set("shed_cost", static_cast<int64_t>(ss.admission.shed_cost))
      .Set("shed_expired", static_cast<int64_t>(ss.admission.shed_expired))
      .Set("shed_total", shed)
      .Set("degraded", static_cast<int64_t>(ss.degraded))
      .Set("deadline_exceeded", static_cast<int64_t>(ss.deadline_exceeded))
      .Set("effort_exhausted", static_cast<int64_t>(ss.effort_exhausted))
      .Set("cancelled", static_cast<int64_t>(ss.cancelled))
      .Set("exceptions", static_cast<int64_t>(ss.exceptions));
  std::printf("# stats %s\n", lifecycle.ToString().c_str());

  flush_observability();
  if (!metrics_out.empty()) {
    std::printf("# metrics (json) -> %s\n", metrics_out.c_str());
  }
  if (!metrics_prom.empty()) {
    std::printf("# metrics (prometheus) -> %s\n", metrics_prom.c_str());
  }
  if (!trace_out.empty()) {
    std::printf("# slow-query traces (%lld captured) -> %s\n",
                static_cast<long long>(service.slow_queries().total_recorded()),
                trace_out.c_str());
  }
  return Status::OK();
}

Status RunStats(const ParsedArgs& args) {
  std::string graph_path = args.Get("graph", "");
  if (graph_path.empty()) return Fail("stats needs --graph");
  DHTJOIN_ASSIGN_OR_RETURN(Graph g, LoadEdgeList(graph_path));

  std::printf("graph: %d nodes, %lld directed edges\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));
  ComponentInfo comp = ConnectedComponents(g);
  std::printf("components: %d (largest %lld nodes)\n", comp.num_components,
              static_cast<long long>(comp.largest));
  DegreeStats deg = ComputeDegreeStats(g);
  std::printf(
      "degree: min %lld, p50 %.0f, p90 %.0f, p99 %.0f, max %lld, "
      "mean %.2f\n",
      static_cast<long long>(deg.min), deg.p50, deg.p90, deg.p99,
      static_cast<long long>(deg.max), deg.mean);
  std::printf("global clustering coefficient: %.4f\n",
              GlobalClusteringCoefficient(g));

  if (args.Has("sets")) {
    DHTJOIN_ASSIGN_OR_RETURN(auto sets, LoadNodeSets(args.Get("sets", "")));
    std::printf("node sets (%zu):\n", sets.size());
    for (const NodeSet& s : sets) {
      std::printf("  %-12s %zu nodes\n", s.name().c_str(), s.size());
    }
  }
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  Status status;
  if (parsed->command == "generate") {
    status = RunGenerate(*parsed);
  } else if (parsed->command == "join2") {
    status = RunJoin2(*parsed);
  } else if (parsed->command == "njoin") {
    status = RunNjoin(*parsed);
  } else if (parsed->command == "serve") {
    status = RunServe(*parsed);
  } else if (parsed->command == "stats") {
    status = RunStats(*parsed);
  } else {
    std::fprintf(stderr, "unknown subcommand '%s'\n%s",
                 parsed->command.c_str(), kUsage);
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dhtjoin::cli

int main(int argc, char** argv) { return dhtjoin::cli::Main(argc, argv); }
