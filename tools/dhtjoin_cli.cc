/// \file tools/dhtjoin_cli.cc
/// \brief Command-line front end for the dhtjoin library.
///
/// Subcommands:
///   generate  --dataset yeast|dblp|youtube --out G.txt --sets S.txt
///             [--nodes N] [--seed S]
///   join2     --graph G.txt --sets S.txt --left NAME --right NAME
///             [--k 50] [--algo bidj-y|bidj-x|bbj|fbj|fidj]
///             [--measure dhtlambda[:l]|dhte|ppr[:c]] [--epsilon 1e-6]
///   njoin     --graph G.txt --sets S.txt --query "A-B,B>C"
///             [--agg min|sum] [--k 50] [--m 50]
///             [--algo pj-i|pj|ap|nl] [--measure ...] [--epsilon 1e-6]
///   serve     --graph G.txt --sets S.txt [--serve-workload zipf]
///             [--requests 200] [--templates 16] [--zipf 1.0]
///             [--set-size 100] [--k 50] [--threads N] [--cache-mb MB]
///             [--seed 17] [--measure ...] [--epsilon 1e-6]
///
/// Examples:
///   dhtjoin_cli generate --dataset yeast --out yeast.txt --sets sets.txt
///   dhtjoin_cli join2 --graph yeast.txt --sets sets.txt
///       --left 3-U --right 8-D --k 10
///   dhtjoin_cli njoin --graph yeast.txt --sets sets.txt
///       --query "3-U>8-D,8-D>3-U" --k 5
///   (set names containing '-' need '>' edges in --query)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/supervisor.h"
#include "cluster/worker.h"
#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"
#include "datasets/yeast_like.h"
#include "datasets/youtube_like.h"
#include "graph/analysis.h"
#include "graph/reorder.h"
#include "obs/export.h"
#include "obs/json.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "tools/cli_parse.h"
#include "util/deadline.h"
#include "util/timer.h"

namespace dhtjoin::cli {
namespace {

/// Graceful-shutdown flag: SIGTERM/SIGINT flip it, the serve/worker
/// loops poll it, drain in-flight work under a deadline, flush the
/// observability files, and exit 0 (DESIGN.md §12). std::atomic<bool>
/// is lock-free here, so the handler write is async-signal-safe.
std::atomic<bool> g_stop{false};

extern "C" void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_release);
}

void InstallStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

constexpr char kUsage[] =
    "usage: dhtjoin_cli <generate|join2|njoin|serve|worker|stats> "
    "[--option value]...\n"
    "  stats    --graph G.txt [--sets S.txt]\n"
    "  generate --dataset yeast|dblp|youtube --out G.txt --sets S.txt\n"
    "           [--nodes N] [--seed S]\n"
    "  join2    --graph G.txt --sets S.txt --left NAME --right NAME\n"
    "           [--k 50] [--algo bidj-y|bidj-x|bbj|fbj|fidj]\n"
    "           [--measure dhtlambda[:l]|dhte|ppr[:c]] [--epsilon 1e-6]\n"
    "           [--reorder none|degree|rcm]\n"
    "  njoin    --graph G.txt --sets S.txt --query \"A>B,B>C\"\n"
    "           [--agg min|sum] [--k 50] [--m 50]\n"
    "           [--algo pj-i|pj|ap|nl] [--measure ...] [--epsilon 1e-6]\n"
    "           [--reorder none|degree|rcm]\n"
    "  serve    --graph G.txt --sets S.txt [--serve-workload zipf]\n"
    "           [--requests 200] [--templates 16] [--zipf 1.0]\n"
    "           [--set-size 100] [--k 50] [--threads N] [--cache-mb MB]\n"
    "           [--admit-floor-bytes B] [--seed 17] [--measure ...]\n"
    "           [--epsilon 1e-6] [--reorder none|degree|rcm]\n"
    "           [--deadline-ms MS] [--max-in-flight N] [--max-cost C]\n"
    "           [--slow-ms MS] [--trace-out T.json]\n"
    "           [--metrics-out M.json] [--metrics-prom M.prom]\n"
    "           [--metrics-every N] [--clients N] [--retry-attempts N]\n"
    "           [--workers N] [--checkpoint-dir DIR]\n"
    "           [--checkpoint-every-ms MS] [--respawn-max N]\n"
    "  worker   --graph G.txt --sets S.txt [--port P] [--measure ...]\n"
    "           [--epsilon 1e-6] [--max-in-flight N] [--max-cost C]\n"
    "           [--checkpoint-dir DIR] [--checkpoint-every-ms MS]\n"
    "           [--chaos-seed S] [--chaos-kill P] [--chaos-delay P]\n"
    "           [--chaos-delay-us US] [--chaos-corrupt P]\n"
    "           [--chaos-truncate P] [--chaos-checkpoint-kill P]\n";

Status Fail(const std::string& msg) { return Status::InvalidArgument(msg); }

/// Resolves `name` to a node set: a named set from --sets, or an
/// inline literal list of external node ids ("3,1,17"). Inline ids are
/// validated at parse time against the graph — negative or
/// out-of-range ids fail with a clear error instead of flowing into
/// the engines as raw ints (ParseNodeId returns typed ExtNodeId).
Result<NodeSet> FindSet(const std::vector<NodeSet>& sets, const Graph& g,
                        const std::string& name) {
  for (const NodeSet& s : sets) {
    if (s.name() == name) return s;
  }
  if (!name.empty() &&
      name.find_first_not_of("0123456789,-") == std::string::npos) {
    DHTJOIN_ASSIGN_OR_RETURN(
        std::vector<ExtNodeId> ids,
        ParseNodeList(name, "inline set", g.num_nodes()));
    return NodeSet(name, std::move(ids));
  }
  return Status::NotFound("node set '" + name + "' not found");
}

Status RunGenerate(const ParsedArgs& args) {
  std::string dataset = args.Get("dataset", "");
  std::string out_path = args.Get("out", "");
  std::string sets_path = args.Get("sets", "");
  if (dataset.empty() || out_path.empty() || sets_path.empty()) {
    return Fail("generate needs --dataset, --out and --sets");
  }
  uint64_t seed = 13;
  if (args.Has("seed")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t s,
                             ParsePositiveInt(args.Get("seed", ""), "seed"));
    seed = static_cast<uint64_t>(s);
  }

  Graph graph;
  std::vector<NodeSet> sets;
  if (dataset == "yeast") {
    datasets::YeastLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_nodes = static_cast<NodeId>(n);
      cfg.num_edges = 3 * n;
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateYeastLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.partitions);
  } else if (dataset == "dblp") {
    datasets::DblpLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_authors = static_cast<NodeId>(n);
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateDblpLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.areas);
  } else if (dataset == "youtube") {
    datasets::YouTubeLikeConfig cfg;
    cfg.seed = seed;
    if (args.Has("nodes")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          int64_t n, ParsePositiveInt(args.Get("nodes", ""), "nodes"));
      cfg.num_users = static_cast<NodeId>(n);
    }
    DHTJOIN_ASSIGN_OR_RETURN(auto ds, datasets::GenerateYouTubeLike(cfg));
    graph = std::move(ds.graph);
    sets = std::move(ds.groups);
  } else {
    return Fail("unknown --dataset '" + dataset + "'");
  }

  DHTJOIN_RETURN_NOT_OK(SaveEdgeList(graph, out_path));
  DHTJOIN_RETURN_NOT_OK(SaveNodeSets(sets, sets_path));
  std::printf("wrote %d nodes / %lld edges to %s, %zu node sets to %s\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              out_path.c_str(), sets.size(), sets_path.c_str());
  return Status::OK();
}

struct LoadedInputs {
  Graph graph;
  std::vector<NodeSet> sets;
  DhtParams measure;
  int d;
};

Result<LoadedInputs> LoadCommon(const ParsedArgs& args) {
  std::string graph_path = args.Get("graph", "");
  std::string sets_path = args.Get("sets", "");
  if (graph_path.empty() || sets_path.empty()) {
    return Fail("need --graph and --sets");
  }
  LoadedInputs out;
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, LoadEdgeList(graph_path));
  // Optional cache-conscious relayout (graph/reorder.h). Results are
  // bit-identical in every layout — node sets, printed ids, and scores
  // are all external-id based; only the physical CSR changes.
  DHTJOIN_ASSIGN_OR_RETURN(ReorderKind reorder,
                           ParseReorderKind(args.Get("reorder", "none")));
  if (reorder != ReorderKind::kNone) {
    DHTJOIN_ASSIGN_OR_RETURN(out.graph, ReorderGraph(out.graph, reorder));
    std::printf("# graph relaid out: --reorder %s\n",
                ReorderKindName(reorder));
  }
  DHTJOIN_ASSIGN_OR_RETURN(out.sets, LoadNodeSets(sets_path));
  DHTJOIN_ASSIGN_OR_RETURN(out.measure,
                           ParseMeasure(args.Get("measure", "dhtlambda")));
  double epsilon = std::strtod(args.Get("epsilon", "1e-6").c_str(), nullptr);
  if (!(epsilon > 0.0)) return Fail("--epsilon must be positive");
  out.d = out.measure.StepsForEpsilon(epsilon);
  return out;
}

Status RunJoin2(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));
  DHTJOIN_ASSIGN_OR_RETURN(NodeSet P,
                           FindSet(in.sets, in.graph,
                                   args.Get("left", "")));
  DHTJOIN_ASSIGN_OR_RETURN(NodeSet Q,
                           FindSet(in.sets, in.graph,
                                   args.Get("right", "")));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));

  std::string algo = args.Get("algo", "bidj-y");
  std::unique_ptr<TwoWayJoin> join;
  if (algo == "bidj-y") {
    join = std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY});
  } else if (algo == "bidj-x") {
    join = std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX});
  } else if (algo == "bbj") {
    join = std::make_unique<BBjJoin>();
  } else if (algo == "fbj") {
    join = std::make_unique<FBjJoin>();
  } else if (algo == "fidj") {
    join = std::make_unique<FIdjJoin>();
  } else {
    return Fail("unknown --algo '" + algo + "'");
  }

  DHTJOIN_ASSIGN_OR_RETURN(
      auto pairs, join->Run(in.graph, in.measure, in.d, P, Q,
                            static_cast<std::size_t>(k)));
  std::printf("# top-%lld 2-way join %s x %s via %s (d=%d)\n",
              static_cast<long long>(k), P.name().c_str(),
              Q.name().c_str(), join->Name().c_str(), in.d);
  int rank = 1;
  for (const ScoredPair& sp : pairs) {
    std::printf("%4d  %8d %8d  %+.8f\n", rank++, sp.p, sp.q, sp.score);
  }
  // Machine-readable run counters, incl. the fused scheduler's
  // fork/join barriers (total and per deepening round). Rendered by
  // the shared export helper (obs/export.h) — byte-compatible with the
  // historical hand-rolled printf, asserted in tests/obs_test.cc.
  std::printf("# stats %s\n", obs::ToJson(join->stats()).c_str());
  return Status::OK();
}

Status RunNjoin(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));
  DHTJOIN_ASSIGN_OR_RETURN(auto edge_specs,
                           ParseQuerySpec(args.Get("query", "")));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t m,
                           ParsePositiveInt(args.Get("m", "50"), "m"));

  QueryGraph query;
  std::map<std::string, int> attr_of;
  auto attr = [&](const std::string& name) -> Result<int> {
    auto it = attr_of.find(name);
    if (it != attr_of.end()) return it->second;
    DHTJOIN_ASSIGN_OR_RETURN(NodeSet set, FindSet(in.sets, in.graph, name));
    int a = query.AddNodeSet(std::move(set));
    attr_of[name] = a;
    return a;
  };
  for (const QueryEdgeSpec& e : edge_specs) {
    DHTJOIN_ASSIGN_OR_RETURN(int from, attr(e.from));
    DHTJOIN_ASSIGN_OR_RETURN(int to, attr(e.to));
    if (e.bidirectional) {
      DHTJOIN_RETURN_NOT_OK(query.AddBidirectionalEdge(from, to));
    } else {
      DHTJOIN_RETURN_NOT_OK(query.AddEdge(from, to));
    }
  }

  std::string agg_name = args.Get("agg", "min");
  MinAggregate min_f;
  SumAggregate sum_f;
  const Aggregate* f = nullptr;
  if (agg_name == "min") {
    f = &min_f;
  } else if (agg_name == "sum") {
    f = &sum_f;
  } else {
    return Fail("unknown --agg '" + agg_name + "'");
  }

  std::string algo = args.Get("algo", "pj-i");
  std::unique_ptr<NwayJoin> join;
  if (algo == "pj-i") {
    join = std::make_unique<PartialJoin>(PartialJoin::Options{
        .m = static_cast<std::size_t>(m), .incremental = true});
  } else if (algo == "pj") {
    join = std::make_unique<PartialJoin>(PartialJoin::Options{
        .m = static_cast<std::size_t>(m), .incremental = false});
  } else if (algo == "ap") {
    join = std::make_unique<AllPairsJoin>();
  } else if (algo == "nl") {
    join = std::make_unique<NestedLoopJoin>();
  } else {
    return Fail("unknown --algo '" + algo + "'");
  }

  DHTJOIN_ASSIGN_OR_RETURN(
      auto tuples, join->Run(in.graph, in.measure, in.d, query, *f,
                             static_cast<std::size_t>(k)));
  std::printf("# top-%lld %d-way join via %s, f=%s (d=%d)\n",
              static_cast<long long>(k), query.num_sets(),
              join->Name().c_str(), f->Name().c_str(), in.d);
  int rank = 1;
  for (const TupleAnswer& t : tuples) {
    std::printf("%4d ", rank++);
    for (NodeId u : t.nodes) std::printf(" %8d", u);
    std::printf("  %+.8f\n", t.f);
  }
  return Status::OK();
}

/// Serve-mode knobs shared by the single-process and cluster paths.
struct ServeRuntimeFlags {
  int64_t deadline_ms = 0;
  int clients = 1;
  int retry_attempts = 5;
  int64_t metrics_every = 0;
  std::string metrics_out;
  std::string metrics_prom;
  std::string trace_out;
  /// Durability & recovery (DESIGN.md §13): directory for per-worker
  /// warm-state snapshots, the periodic checkpoint interval, and the
  /// per-worker respawn cap (0 = no supervised respawn).
  std::string checkpoint_dir;
  int64_t checkpoint_every_ms = 0;
  int64_t respawn_max = 0;
};

/// Cluster serve mode (`--workers N`): forks N loopback worker
/// processes, routes the workload through a ClusterCoordinator
/// (deadlines, retries, hedging, failover — cluster/coordinator.h),
/// and tears the workers down gracefully at the end or on SIGTERM/
/// SIGINT. Exit 0 on a clean interrupt: stop admitting, drain, flush.
Status RunServeCluster(const LoadedInputs& in,
                       const serve::ServingWorkload& workload,
                       const serve::DhtJoinService::Options& sopts,
                       int num_workers, const ServeRuntimeFlags& flags) {
  // Fork FIRST: fork() clones only the calling thread, and the
  // coordinator's local service spins up its pool at construction.
  // Workers inherit the graph copy-on-write. With --respawn-max the
  // forking goes through a WorkerSupervisor agent (also forked here,
  // while we are still single-threaded) so dead workers can be
  // relaunched later, when this process is long multi-threaded.
  auto worker_options_for = [&](int i) {
    cluster::WorkerOptions wo;
    wo.service = sopts;
    if (!flags.checkpoint_dir.empty()) {
      wo.checkpoint_path =
          flags.checkpoint_dir + "/worker_" + std::to_string(i) + ".snap";
      wo.checkpoint_every_ms = flags.checkpoint_every_ms;
    }
    return wo;
  };
  std::unique_ptr<cluster::WorkerSupervisor> supervisor;
  std::vector<cluster::SpawnedWorker> spawned;
  std::vector<cluster::WorkerEndpoint> endpoints;
  if (flags.respawn_max > 0) {
    std::vector<cluster::WorkerSlot> slots(
        static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      slots[static_cast<std::size_t>(i)].options = worker_options_for(i);
    }
    DHTJOIN_ASSIGN_OR_RETURN(
        supervisor, cluster::WorkerSupervisor::Start(in.graph, in.measure,
                                                     in.d, std::move(slots)));
    for (int i = 0; i < num_workers; ++i) {
      Result<cluster::SpawnedWorker> w =
          supervisor->Spawn(static_cast<std::size_t>(i));
      if (!w.ok()) return w.status();  // supervisor dtor reaps the rest
      spawned.push_back(*w);
      endpoints.push_back(cluster::WorkerEndpoint{w->port});
    }
  } else {
    for (int i = 0; i < num_workers; ++i) {
      Result<cluster::SpawnedWorker> w = cluster::SpawnWorkerProcess(
          in.graph, in.measure, in.d, worker_options_for(i));
      if (!w.ok()) {
        for (const cluster::SpawnedWorker& s : spawned) {
          cluster::KillWorkerProcess(s);
        }
        return w.status();
      }
      spawned.push_back(*w);
      endpoints.push_back(cluster::WorkerEndpoint{w->port});
    }
  }

  cluster::CoordinatorOptions copts;
  copts.retry.max_attempts = flags.retry_attempts;
  copts.local_service = sopts;
  if (supervisor != nullptr) {
    copts.supervisor = supervisor.get();
    copts.respawn.enabled = true;
    copts.respawn.max_respawns = flags.respawn_max;
  }
  cluster::ClusterCoordinator coord(in.graph, in.measure, in.d,
                                    std::move(endpoints), copts);
  coord.StartHeartbeats();
  InstallStopHandlers();

  std::printf("# cluster serving %zu requests across %d workers "
              "(%d clients, %d attempts/query, d=%d)\n",
              workload.requests.size(), num_workers, flags.clients,
              flags.retry_attempts, in.d);
  for (const cluster::SpawnedWorker& s : spawned) {
    std::printf("# worker pid %lld on 127.0.0.1:%u\n",
                static_cast<long long>(s.pid), s.port);
  }

  struct Totals {
    int64_t completed = 0;
    int64_t degraded = 0;
    int64_t shed = 0;
    int64_t failed = 0;
    int64_t aborted = 0;
    int64_t retries = 0;
    int64_t hedged = 0;
    int64_t hedge_won = 0;
    int64_t failover = 0;
    int64_t local_fallback = 0;
  };
  Totals total;
  std::mutex agg_mu;
  std::atomic<std::size_t> next{0};
  WallTimer timer;
  auto client = [&] {
    Totals local;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= workload.requests.size()) break;
      if (g_stop.load(std::memory_order_acquire)) {
        local.aborted++;  // stop admitting, but account for every request
        continue;
      }
      const serve::TwoWayRequest& req = workload.requests[i];
      std::shared_ptr<ExecContext> exec;
      if (flags.deadline_ms > 0) {
        exec = std::make_shared<ExecContext>();
        exec->deadline = Deadline::AfterMillis(flags.deadline_ms);
      }
      cluster::ClusterQueryStats cqs;
      Result<std::vector<ScoredPair>> r =
          coord.TwoWay(req.P, req.Q, req.k, &cqs, exec.get());
      local.retries += cqs.retries;
      if (cqs.hedged) local.hedged++;
      if (cqs.hedge_won) local.hedge_won++;
      if (cqs.failover) local.failover++;
      if (cqs.local_fallback) local.local_fallback++;
      if (r.ok()) {
        local.completed++;
        if (cqs.degraded) local.degraded++;
      } else if (r.status().code() == StatusCode::kResourceExhausted) {
        local.shed++;  // all attempts rejected: client-visible shed
      } else {
        local.failed++;  // typed error; the replay keeps going
      }
    }
    const std::lock_guard<std::mutex> lock(agg_mu);
    total.completed += local.completed;
    total.degraded += local.degraded;
    total.shed += local.shed;
    total.failed += local.failed;
    total.aborted += local.aborted;
    total.retries += local.retries;
    total.hedged += local.hedged;
    total.hedge_won += local.hedge_won;
    total.failover += local.failover;
    total.local_fallback += local.local_fallback;
  };
  if (flags.clients == 1) {
    client();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(flags.clients));
    for (int t = 0; t < flags.clients; ++t) threads.emplace_back(client);
    for (std::thread& t : threads) t.join();
  }
  const double seconds = timer.Seconds();
  coord.StopHeartbeats();

  // One export carries both serve.* (local fallback service) and
  // cluster.* metrics — they share a registry.
  if (!flags.metrics_out.empty() || !flags.metrics_prom.empty()) {
    const obs::MetricsSnapshot snap = coord.SnapshotMetrics();
    if (!flags.metrics_out.empty()) {
      obs::WriteJsonFile(flags.metrics_out, obs::ToJson(snap));
    }
    if (!flags.metrics_prom.empty()) {
      obs::WriteJsonFile(flags.metrics_prom, obs::ToPrometheusText(snap));
    }
  }
  if (!flags.trace_out.empty()) {
    obs::WriteJsonFile(flags.trace_out,
                       coord.local_service().slow_queries().ToJson());
  }

  std::printf("cluster served %lld queries in %.3f s (%zu healthy "
              "workers at end)\n",
              static_cast<long long>(total.completed), seconds,
              coord.NumHealthy());
  obs::JsonObject cj;
  cj.Set("completed", total.completed)
      .Set("degraded", total.degraded)
      .Set("shed", total.shed)
      .Set("failed", total.failed)
      .Set("aborted", total.aborted)
      .Set("retries", total.retries)
      .Set("hedged", total.hedged)
      .Set("hedge_won", total.hedge_won)
      .Set("failover", total.failover)
      .Set("local_fallback", total.local_fallback);
  std::printf("# cluster %s\n", cj.ToString().c_str());

  Status worker_status = Status::OK();
  for (std::size_t i = 0; i < spawned.size(); ++i) {
    // Workers forked via the supervisor are the AGENT's children;
    // their graceful stop must go through it (we cannot reap
    // grandchildren).
    Status st = supervisor != nullptr
                    ? supervisor->StopSlot(i, 2000)
                    : cluster::StopWorkerProcess(spawned[i], 2000);
    if (!st.ok()) {
      std::printf("# worker pid %lld stop: %s\n",
                  static_cast<long long>(spawned[i].pid),
                  st.ToString().c_str());
      if (worker_status.ok()) worker_status = st;
    }
  }
  if (g_stop.load(std::memory_order_acquire)) {
    std::printf("# interrupted: drained, flushed, workers stopped\n");
    return Status::OK();  // a clean interrupt is a clean exit
  }
  return worker_status;
}

/// Serving mode: generate a repeated-query workload over the loaded
/// node sets and drive it through a DhtJoinService, reporting warm
/// throughput and cache behaviour. `--serve-workload` picks the
/// generator (only "zipf" today); `--threads` > 1 executes the stream
/// as concurrent sessions.
Status RunServe(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));

  std::string kind = args.Get("serve-workload", "zipf");
  if (kind != "zipf") {
    return Fail("unknown --serve-workload '" + kind + "' (try: zipf)");
  }
  serve::WorkloadOptions wopts;
  DHTJOIN_ASSIGN_OR_RETURN(
      int64_t requests, ParsePositiveInt(args.Get("requests", "200"),
                                         "requests"));
  DHTJOIN_ASSIGN_OR_RETURN(
      int64_t templates, ParsePositiveInt(args.Get("templates", "16"),
                                          "templates"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t set_size,
                           ParsePositiveInt(args.Get("set-size", "100"),
                                            "set-size"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t k,
                           ParsePositiveInt(args.Get("k", "50"), "k"));
  DHTJOIN_ASSIGN_OR_RETURN(int64_t seed,
                           ParsePositiveInt(args.Get("seed", "17"), "seed"));
  wopts.num_requests = static_cast<std::size_t>(requests);
  wopts.num_templates = static_cast<std::size_t>(templates);
  wopts.set_size = static_cast<std::size_t>(set_size);
  wopts.k = static_cast<std::size_t>(k);
  wopts.seed = static_cast<uint64_t>(seed);
  wopts.zipf_s = std::strtod(args.Get("zipf", "1.0").c_str(), nullptr);
  if (wopts.zipf_s < 0.0) return Fail("--zipf must be non-negative");

  DHTJOIN_ASSIGN_OR_RETURN(
      auto workload,
      serve::GenerateZipfianTwoWayWorkload(in.graph, in.sets, wopts));

  serve::DhtJoinService::Options sopts;
  if (args.Has("threads")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t threads, ParsePositiveInt(args.Get("threads", ""),
                                          "threads"));
    sopts.num_threads = static_cast<int>(threads);
  }
  if (args.Has("cache-mb")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t mb, ParsePositiveInt(args.Get("cache-mb", ""), "cache-mb"));
    sopts.cache_budget_bytes = static_cast<std::size_t>(mb) << 20;
  }
  if (args.Has("admit-floor-bytes")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t floor, ParsePositiveInt(args.Get("admit-floor-bytes", ""),
                                        "admit-floor-bytes"));
    sopts.cache_admission_bypass_bytes = static_cast<std::size_t>(floor);
  }
  // Lifecycle flags: per-query deadline and admission gates
  // (serve/admission.h). Deadline-hit queries return DEGRADED partial
  // answers (counted below), they do not fail the run; admission-shed
  // queries resolve with kResourceExhausted.
  int64_t deadline_ms = 0;
  if (args.Has("deadline-ms")) {
    DHTJOIN_ASSIGN_OR_RETURN(deadline_ms,
                             ParsePositiveInt(args.Get("deadline-ms", ""),
                                              "deadline-ms"));
  }
  if (args.Has("max-in-flight")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t cap, ParsePositiveInt(args.Get("max-in-flight", ""),
                                      "max-in-flight"));
    sopts.admission.max_in_flight = cap;
  }
  if (args.Has("max-cost")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t ceiling,
                             ParsePositiveInt(args.Get("max-cost", ""),
                                              "max-cost"));
    sopts.admission.max_estimated_cost = ceiling;
  }
  // Observability export surface (obs/export.h, DESIGN.md §11).
  // --slow-ms turns on per-query span tracing and retains the span
  // trees of queries at or above the threshold in the ring-buffered
  // slow-query log; --trace-out alone captures every traced query.
  const std::string metrics_out = args.Get("metrics-out", "");
  const std::string metrics_prom = args.Get("metrics-prom", "");
  const std::string trace_out = args.Get("trace-out", "");
  int64_t metrics_every = 0;
  if (args.Has("metrics-every")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        metrics_every,
        ParsePositiveInt(args.Get("metrics-every", ""), "metrics-every"));
  }
  if (args.Has("slow-ms")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t slow_ms,
        ParsePositiveInt(args.Get("slow-ms", ""), "slow-ms"));
    sopts.trace_queries = true;
    sopts.slow_query_nanos = slow_ms * 1000000;
  } else if (!trace_out.empty()) {
    sopts.trace_queries = true;
    sopts.slow_query_nanos = 1;  // no threshold given: capture everything
  }

  // Client-side replay knobs: how many client threads drive the
  // stream, and how often a rejected query is resubmitted before it
  // counts as shed (serve/workload.h ReplayOptions).
  ServeRuntimeFlags flags;
  flags.deadline_ms = deadline_ms;
  flags.metrics_every = metrics_every;
  flags.metrics_out = metrics_out;
  flags.metrics_prom = metrics_prom;
  flags.trace_out = trace_out;
  if (args.Has("clients")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t clients, ParsePositiveInt(args.Get("clients", ""),
                                          "clients"));
    flags.clients = static_cast<int>(clients);
  } else if (sopts.num_threads > 1) {
    flags.clients = sopts.num_threads;
  }
  if (args.Has("retry-attempts")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t attempts, ParsePositiveInt(args.Get("retry-attempts", ""),
                                           "retry-attempts"));
    flags.retry_attempts = static_cast<int>(attempts);
  }
  flags.checkpoint_dir = args.Get("checkpoint-dir", "");
  if (args.Has("checkpoint-every-ms")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        flags.checkpoint_every_ms,
        ParsePositiveInt(args.Get("checkpoint-every-ms", ""),
                         "checkpoint-every-ms"));
    if (flags.checkpoint_dir.empty()) {
      return Fail("--checkpoint-every-ms needs --checkpoint-dir");
    }
  }
  if (args.Has("respawn-max")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        flags.respawn_max,
        ParsePositiveInt(args.Get("respawn-max", ""), "respawn-max"));
  }
  if (args.Has("workers")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t workers, ParsePositiveInt(args.Get("workers", ""),
                                          "workers"));
    // Dispatch BEFORE the service below spins up its thread pool:
    // worker processes must fork from a single-threaded parent.
    return RunServeCluster(in, workload, sopts,
                           static_cast<int>(workers), flags);
  }

  serve::DhtJoinService service(in.graph, in.measure, in.d, sopts);

  // One snapshot, both formats — the JSON and Prometheus dumps always
  // describe the same instant. Runs again at exit so the final files
  // cover the whole run even without --metrics-every.
  auto flush_observability = [&] {
    if (!metrics_out.empty() || !metrics_prom.empty()) {
      const obs::MetricsSnapshot snap = service.SnapshotMetrics();
      if (!metrics_out.empty()) {
        obs::WriteJsonFile(metrics_out, obs::ToJson(snap));
      }
      if (!metrics_prom.empty()) {
        obs::WriteJsonFile(metrics_prom, obs::ToPrometheusText(snap));
      }
    }
    if (!trace_out.empty()) {
      obs::WriteJsonFile(trace_out, service.slow_queries().ToJson());
    }
  };

  std::printf("# serving %zu requests over %zu templates (zipf %.2f, "
              "|sets| trimmed to %zu, k=%zu, d=%d, %d clients, "
              "%d attempts/query)\n",
              workload.requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k, in.d, flags.clients,
              flags.retry_attempts);

  InstallStopHandlers();
  serve::ReplayOptions ropts;
  ropts.concurrency = flags.clients;
  ropts.max_attempts = flags.retry_attempts;
  ropts.deadline_micros = flags.deadline_ms * 1000;

  WallTimer timer;
  serve::ReplayStats rs;
  // Chunked so --metrics-every flushes mid-run; one chunk otherwise.
  const std::size_t chunk =
      flags.metrics_every > 0 ? static_cast<std::size_t>(flags.metrics_every)
                              : workload.requests.size();
  for (std::size_t begin = 0; begin < workload.requests.size();
       begin += chunk) {
    const std::size_t end =
        std::min(begin + chunk, workload.requests.size());
    serve::ServingWorkload part;
    part.num_templates = workload.num_templates;
    part.requests.assign(workload.requests.begin() +
                             static_cast<std::ptrdiff_t>(begin),
                         workload.requests.begin() +
                             static_cast<std::ptrdiff_t>(end));
    DHTJOIN_ASSIGN_OR_RETURN(
        serve::ReplayStats part_stats,
        serve::ReplayWorkload(service, part, ropts, &g_stop));
    rs.completed += part_stats.completed;
    rs.degraded += part_stats.degraded;
    rs.shed += part_stats.shed;
    rs.failed += part_stats.failed;
    rs.aborted += part_stats.aborted;
    rs.retries += part_stats.retries;
    rs.queries_retried += part_stats.queries_retried;
    rs.backoff_sleeps += part_stats.backoff_sleeps;
    rs.backoff_micros += part_stats.backoff_micros;
    if (flags.metrics_every > 0) flush_observability();
  }
  const double seconds = timer.Seconds();
  service.Drain();

  serve::CacheStats stats = service.cache_stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  const double served = static_cast<double>(
      rs.completed > 0 ? rs.completed : 1);
  std::printf("served %lld queries in %.3f s (%.3f ms/query, %.1f qps)\n",
              static_cast<long long>(rs.completed), seconds,
              seconds * 1e3 / served,
              served / (seconds > 0 ? seconds : 1e-9));
  std::printf("cache: %.1f%% hit rate (%lld hits / %lld misses), "
              "%lld evictions, %lld admission rejects, %zu entries, "
              "%.1f MB resident of %.1f MB\n",
              total > 0 ? 1e2 * static_cast<double>(stats.hits) / total : 0.0,
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              static_cast<long long>(stats.evictions),
              static_cast<long long>(stats.admission_rejects), stats.entries,
              static_cast<double>(stats.resident_bytes) / (1 << 20),
              static_cast<double>(service.cache().max_bytes()) / (1 << 20));
  // Machine-readable lifecycle counters (serve/admission.h,
  // ServiceStats): how many queries were shed at each gate, degraded
  // by deadline/effort, hard-cancelled, or hit a contained exception.
  serve::ServiceStats ss = service.service_stats();
  obs::JsonObject lifecycle;
  lifecycle.Set("admitted", static_cast<int64_t>(ss.admission.admitted))
      .Set("shed_capacity", static_cast<int64_t>(ss.admission.shed_capacity))
      .Set("shed_cost", static_cast<int64_t>(ss.admission.shed_cost))
      .Set("shed_expired", static_cast<int64_t>(ss.admission.shed_expired))
      .Set("shed_total", rs.shed)
      .Set("degraded", static_cast<int64_t>(ss.degraded))
      .Set("deadline_exceeded", static_cast<int64_t>(ss.deadline_exceeded))
      .Set("effort_exhausted", static_cast<int64_t>(ss.effort_exhausted))
      .Set("cancelled", static_cast<int64_t>(ss.cancelled))
      .Set("exceptions", static_cast<int64_t>(ss.exceptions));
  std::printf("# stats %s\n", lifecycle.ToString().c_str());
  // Client-side replay counters: how the backoff/retry loop behaved
  // (serve/workload.h ReplayStats). `shed` here means "still rejected
  // after every attempt", not "rejected once".
  obs::JsonObject replay;
  replay.Set("completed", rs.completed)
      .Set("client_degraded", rs.degraded)
      .Set("shed", rs.shed)
      .Set("failed", rs.failed)
      .Set("aborted", rs.aborted)
      .Set("retries", rs.retries)
      .Set("queries_retried", rs.queries_retried)
      .Set("backoff_sleeps", rs.backoff_sleeps)
      .Set("backoff_micros", rs.backoff_micros);
  std::printf("# replay %s\n", replay.ToString().c_str());

  flush_observability();
  if (!metrics_out.empty()) {
    std::printf("# metrics (json) -> %s\n", metrics_out.c_str());
  }
  if (!metrics_prom.empty()) {
    std::printf("# metrics (prometheus) -> %s\n", metrics_prom.c_str());
  }
  if (!trace_out.empty()) {
    std::printf("# slow-query traces (%lld captured) -> %s\n",
                static_cast<long long>(service.slow_queries().total_recorded()),
                trace_out.c_str());
  }
  if (g_stop.load(std::memory_order_acquire)) {
    std::printf("# interrupted: drained and flushed; %lld requests not "
                "admitted\n",
                static_cast<long long>(rs.aborted));
  }
  return Status::OK();
}

/// Standalone worker process (`dhtjoin_cli worker`): loads the graph,
/// serves framed two-way join requests on a loopback port until
/// SIGTERM/SIGINT, then drains in-flight queries and exits 0. The
/// chaos flags arm the seeded fault schedule of cluster/chaos.h —
/// deterministic, for drills and demos; omit them in real serving.
Status RunWorker(const ParsedArgs& args) {
  DHTJOIN_ASSIGN_OR_RETURN(LoadedInputs in, LoadCommon(args));

  cluster::WorkerOptions wopts;
  if (args.Has("port")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t port,
                             ParsePositiveInt(args.Get("port", ""), "port"));
    if (port > 65535) return Fail("--port must fit in 16 bits");
    wopts.port = static_cast<uint16_t>(port);
  }
  if (args.Has("max-in-flight")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t cap, ParsePositiveInt(args.Get("max-in-flight", ""),
                                      "max-in-flight"));
    wopts.service.admission.max_in_flight = cap;
  }
  if (args.Has("max-cost")) {
    DHTJOIN_ASSIGN_OR_RETURN(int64_t ceiling,
                             ParsePositiveInt(args.Get("max-cost", ""),
                                              "max-cost"));
    wopts.service.admission.max_estimated_cost = ceiling;
  }
  if (args.Has("checkpoint-dir")) {
    wopts.checkpoint_path = args.Get("checkpoint-dir", "") + "/worker.snap";
    if (args.Has("checkpoint-every-ms")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          wopts.checkpoint_every_ms,
          ParsePositiveInt(args.Get("checkpoint-every-ms", ""),
                           "checkpoint-every-ms"));
    }
  } else if (args.Has("checkpoint-every-ms")) {
    return Fail("--checkpoint-every-ms needs --checkpoint-dir");
  }
  if (args.Has("chaos-seed")) {
    DHTJOIN_ASSIGN_OR_RETURN(
        int64_t seed, ParsePositiveInt(args.Get("chaos-seed", ""),
                                       "chaos-seed"));
    wopts.chaos.seed = static_cast<uint64_t>(seed);
    auto prob = [&](const char* flag) {
      return std::strtod(args.Get(flag, "0").c_str(), nullptr);
    };
    wopts.chaos.p_kill_before_reply = prob("chaos-kill");
    wopts.chaos.p_delay_reply = prob("chaos-delay");
    wopts.chaos.p_corrupt_reply = prob("chaos-corrupt");
    wopts.chaos.p_truncate_reply = prob("chaos-truncate");
    wopts.chaos.p_kill_at_checkpoint = prob("chaos-checkpoint-kill");
    if (args.Has("chaos-delay-us")) {
      DHTJOIN_ASSIGN_OR_RETURN(
          wopts.chaos.delay_micros,
          ParsePositiveInt(args.Get("chaos-delay-us", ""), "chaos-delay-us"));
    }
  }

  InstallStopHandlers();
  cluster::WorkerServer server(in.graph, in.measure, in.d, wopts);
  DHTJOIN_RETURN_NOT_OK(server.Start());
  if (!wopts.checkpoint_path.empty()) {
    std::printf("# worker warm state: %lld entries restored from %s\n",
                static_cast<long long>(server.restored_entries()),
                wopts.checkpoint_path.c_str());
  }
  std::printf("# worker listening on 127.0.0.1:%u (graph fp %016llx, "
              "d=%d)\n",
              server.port(),
              static_cast<unsigned long long>(
                  server.service().graph_fingerprint()),
              in.d);
  std::fflush(stdout);  // parents scrape the port from this line

  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("# worker draining\n");
  server.Stop(2000);
  std::printf("# worker served %lld queries; exiting\n",
              static_cast<long long>(server.queries_served()));
  return Status::OK();
}

Status RunStats(const ParsedArgs& args) {
  std::string graph_path = args.Get("graph", "");
  if (graph_path.empty()) return Fail("stats needs --graph");
  DHTJOIN_ASSIGN_OR_RETURN(Graph g, LoadEdgeList(graph_path));

  std::printf("graph: %d nodes, %lld directed edges\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));
  ComponentInfo comp = ConnectedComponents(g);
  std::printf("components: %d (largest %lld nodes)\n", comp.num_components,
              static_cast<long long>(comp.largest));
  DegreeStats deg = ComputeDegreeStats(g);
  std::printf(
      "degree: min %lld, p50 %.0f, p90 %.0f, p99 %.0f, max %lld, "
      "mean %.2f\n",
      static_cast<long long>(deg.min), deg.p50, deg.p90, deg.p99,
      static_cast<long long>(deg.max), deg.mean);
  std::printf("global clustering coefficient: %.4f\n",
              GlobalClusteringCoefficient(g));

  if (args.Has("sets")) {
    DHTJOIN_ASSIGN_OR_RETURN(auto sets, LoadNodeSets(args.Get("sets", "")));
    std::printf("node sets (%zu):\n", sets.size());
    for (const NodeSet& s : sets) {
      std::printf("  %-12s %zu nodes\n", s.name().c_str(), s.size());
    }
  }
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  Status status;
  if (parsed->command == "generate") {
    status = RunGenerate(*parsed);
  } else if (parsed->command == "join2") {
    status = RunJoin2(*parsed);
  } else if (parsed->command == "njoin") {
    status = RunNjoin(*parsed);
  } else if (parsed->command == "serve") {
    status = RunServe(*parsed);
  } else if (parsed->command == "worker") {
    status = RunWorker(*parsed);
  } else if (parsed->command == "stats") {
    status = RunStats(*parsed);
  } else {
    std::fprintf(stderr, "unknown subcommand '%s'\n%s",
                 parsed->command.c_str(), kUsage);
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dhtjoin::cli

int main(int argc, char** argv) { return dhtjoin::cli::Main(argc, argv); }
