/// \file tools/dhtlint.cc
/// \brief CLI driver for the dhtlint determinism rules (CI gate).
///
/// Usage:
///   dhtlint [--root DIR] [--report FILE] [file...]
///
/// With explicit files, lints exactly those (paths are taken relative
/// to --root for rule scoping — this is what run_analysis.sh
/// --changed-only passes). Without files, walks --root (default: the
/// current directory) and lints every C++ source under src/ and
/// tools/ (see lint::DefaultScanPath). Exits 1 when any unsuppressed
/// finding remains, 0 otherwise; --report writes the JSON findings
/// document either way.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/dhtlint_lib.h"

namespace {

namespace fs = std::filesystem;
using dhtjoin::lint::Finding;
using dhtjoin::lint::LintResult;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Path relative to root, '/'-separated (rule scoping is prefix-based).
std::string RelLabel(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  std::string label = (ec || rel.empty()) ? path.string() : rel.string();
  for (char& c : label) {
    if (c == '\\') c = '/';
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string report_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: dhtlint [--root DIR] [--report FILE] [file...]\n");
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }

  std::vector<fs::path> targets;
  if (!files.empty()) {
    for (const std::string& f : files) targets.emplace_back(f);
  } else {
    for (const char* top : {"src", "tools"}) {
      fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        if (dhtjoin::lint::DefaultScanPath(RelLabel(entry.path(), root))) {
          targets.push_back(entry.path());
        }
      }
    }
    std::sort(targets.begin(), targets.end());
  }

  LintResult all;
  int unreadable = 0;
  for (const fs::path& path : targets) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "dhtlint: cannot read %s\n", path.c_str());
      ++unreadable;
      continue;
    }
    dhtjoin::lint::Merge(
        &all, dhtjoin::lint::LintSource(RelLabel(path, root), content));
  }

  for (const Finding& f : all.findings) {
    if (f.suppressed) continue;
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    out << dhtjoin::lint::ReportJson(all);
  }

  const int gate = all.NumUnsuppressed();
  std::printf("dhtlint: %zu files, %zu findings (%d unsuppressed)\n",
              targets.size(), all.findings.size(), gate);
  return (gate > 0 || unreadable > 0) ? 1 : 0;
}
