/// \file bench/bench_baseline_spjoin.cc
/// \brief The shortest-path distance-join comparison the paper makes in
/// prose (Sec II / Related Work), made measurable:
///   1. link-prediction accuracy — DHT top-k ranking vs shortest-path
///      distance ranking ("the shortest path measure is often inferior
///      to random walk metrics");
///   2. the delta-threshold usability problem — result cardinality of
///      the distance join explodes with delta, while top-k asks for k
///      ("It may be easier for a user to specify the value of k rather
///      than delta").

#include "bench_common.h"
#include "datasets/perturb.h"
#include "eval/link_prediction.h"
#include "spjoin/distance_join.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

int main() {
  PaperDefaults def;

  // ------------------------- 1. accuracy: DHT vs shortest-path ranking
  // Run on the WEIGHTED DBLP graph with the temporal protocol: hop
  // distance ignores co-authorship strength, which is exactly where
  // random-walk proximity earns its advantage. (On sparse unweighted
  // graphs at small lambda the two rankings nearly coincide, since
  // lambda^i makes the shortest path dominate the DHT series.)
  std::printf("=== Baseline: DHT vs shortest-path link prediction ===\n");
  {
    auto dblp = MakeDblp();
    auto snapshot = Unwrap(dblp.SnapshotBefore(2010), "snapshot");
    NodeSet db = Unwrap(dblp.Area("DB"), "area").TopByDegree(dblp.graph, 300);
    NodeSet ai = Unwrap(dblp.Area("AI"), "area").TopByDegree(dblp.graph, 300);
    auto dht_roc = Unwrap(
        eval::EvaluateLinkPrediction(dblp.graph, snapshot, db, ai, def.dht,
                                     def.d),
        "DHT link prediction");
    auto sp_roc = Unwrap(EvaluateLinkPredictionByDistance(
                             dblp.graph, snapshot, db, ai, def.d),
                         "SP link prediction");
    TablePrinter auc_table(
        "Link-prediction AUC on weighted DBLP (same candidates)",
        {"ranking", "AUC"});
    auc_table.AddRow(
        {"DHTlambda(0.2), d=8", TablePrinter::Num(dht_roc.auc, 4)});
    auc_table.AddRow(
        {"shortest-path distance", TablePrinter::Num(sp_roc.auc, 4)});
    std::printf("%s\n", auc_table.Render().c_str());
    bool accuracy_pass = dht_roc.auc > sp_roc.auc;
    std::printf(
        "shape check [DHT ranking beats shortest-path ranking]: %s\n\n",
        accuracy_pass ? "PASS" : "FAIL");
    if (!accuracy_pass) return 1;
  }

  auto ds = MakeYeast();
  NodeSet P = Unwrap(ds.Partition("3-U"), "partition");
  NodeSet Q = Unwrap(ds.Partition("8-D"), "partition");

  // ---------------------------- 2. usability: delta vs k result sizes
  std::printf("=== Baseline: distance-join cardinality vs delta ===\n");
  QueryGraph q;
  int a = q.AddNodeSet(P);
  int b = q.AddNodeSet(Q);
  CheckOk(q.AddEdge(a, b), "edge");
  TablePrinter delta_table(
      "2-set distance join on Yeast: answers vs delta "
      "(top-k returns exactly k)",
      {"delta", "answers", "x candidate space"});
  double space = q.CandidateSpace();
  std::size_t last = 0;
  for (int delta = 1; delta <= 5; ++delta) {
    WallTimer timer;
    auto result = Unwrap(DistanceJoin(ds.graph, q, delta, 10000000),
                         "distance join");
    last = result.tuples.size();
    delta_table.AddRow(
        {std::to_string(delta), std::to_string(result.tuples.size()),
         TablePrinter::Num(static_cast<double>(result.tuples.size()) /
                               space * 100.0,
                           2) +
             "%"});
    (void)timer;
  }
  std::printf("%s\n", delta_table.Render().c_str());
  bool explosion_pass = last > static_cast<std::size_t>(0.3 * space);
  std::printf(
      "shape check [delta=5 already returns >30%% of the candidate "
      "space]: %s\n",
      explosion_pass ? "PASS" : "FAIL");
  return explosion_pass ? 0 : 1;
}
