/// \file bench/bench_fig6_link_prediction.cc
/// \brief Reproduces paper Figure 6: (a) ROC curves of 2-way-join link
/// prediction on the three datasets; (b) AUC vs the decay factor lambda
/// for DHTlambda, with DHTe as the flat comparison line (Yeast).
///
/// Paper shape: (a) all three curves rise steeply — TPR > 0.7 at
/// FPR ~ 0.1; (b) AUC stays high (> 0.9 on the real data) across the
/// whole lambda range, peaking in the middle of the range, and DHTe is
/// comparable.

#include "bench_common.h"
#include "datasets/perturb.h"
#include "eval/link_prediction.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

/// Samples the ROC curve at fixed FPR grid points for compact printing.
std::vector<double> SampleTprAt(const eval::RocResult& roc,
                                const std::vector<double>& fprs) {
  std::vector<double> out;
  for (double target : fprs) {
    double tpr = 0.0;
    for (const auto& pt : roc.points) {
      if (pt.fpr <= target) tpr = pt.tpr;
    }
    out.push_back(tpr);
  }
  return out;
}

}  // namespace

int main() {
  PaperDefaults def;
  const std::vector<double> fpr_grid = {0.02, 0.05, 0.1, 0.2, 0.4, 0.6,
                                        0.8};

  // ---------------------------------------------- Fig 6(a): ROC curves
  std::printf("=== Figure 6(a): ROC of link prediction (2-way join) ===\n");

  struct Curve {
    std::string name;
    eval::RocResult roc;
  };
  std::vector<Curve> curves;

  {
    auto ds = MakeYeast();
    NodeSet P = Unwrap(ds.Partition("3-U"), "partition");
    NodeSet Q = Unwrap(ds.Partition("8-D"), "partition");
    auto t = Unwrap(datasets::RemoveInterSetEdges(ds.graph, P, Q, 0.5, 42),
                    "perturb");
    curves.push_back({"Yeast",
                      Unwrap(eval::EvaluateLinkPrediction(
                                 ds.graph, t.graph, P, Q, def.dht, def.d),
                             "link prediction")});
  }
  {
    auto ds = MakeDblp();
    NodeSet db = Unwrap(ds.Area("DB"), "area").TopByDegree(ds.graph, 300);
    NodeSet ai = Unwrap(ds.Area("AI"), "area").TopByDegree(ds.graph, 300);
    auto snapshot = Unwrap(ds.SnapshotBefore(2010), "snapshot");
    curves.push_back({"DBLP",
                      Unwrap(eval::EvaluateLinkPrediction(
                                 ds.graph, snapshot, db, ai, def.dht, def.d),
                             "link prediction")});
  }
  {
    auto ds = MakeYouTube();
    NodeSet g1 = Unwrap(ds.Group(1), "group");
    NodeSet g5 = Unwrap(ds.Group(5), "group");
    auto t = Unwrap(
        datasets::RemoveInterSetEdges(ds.graph, g1, g5, 0.5, 43), "perturb");
    curves.push_back({"YouTube",
                      Unwrap(eval::EvaluateLinkPrediction(
                                 ds.graph, t.graph, g1, g5, def.dht, def.d),
                             "link prediction")});
  }

  {
    std::vector<std::string> header = {"dataset"};
    for (double f : fpr_grid) {
      header.push_back("TPR@FPR=" + TablePrinter::Num(f, 2));
    }
    header.push_back("AUC");
    TablePrinter table("ROC curves (TPR sampled at FPR grid)", header);
    for (const Curve& c : curves) {
      std::vector<std::string> row = {c.name};
      for (double tpr : SampleTprAt(c.roc, fpr_grid)) {
        row.push_back(TablePrinter::Num(tpr, 3));
      }
      row.push_back(TablePrinter::Num(c.roc.auc, 4));
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // ------------------------------------- Fig 6(b): AUC vs lambda, Yeast
  std::printf("=== Figure 6(b): AUC vs lambda (Yeast) ===\n");
  auto ds = MakeYeast();
  NodeSet P = Unwrap(ds.Partition("3-U"), "partition");
  NodeSet Q = Unwrap(ds.Partition("8-D"), "partition");
  auto t = Unwrap(datasets::RemoveInterSetEdges(ds.graph, P, Q, 0.5, 42),
                  "perturb");

  TablePrinter table("AUC vs decay factor (epsilon = 1e-6)",
                     {"measure", "lambda", "d", "AUC"});
  double min_auc = 1.0;
  for (double lambda : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    DhtParams p = DhtParams::Lambda(lambda);
    int d = p.StepsForEpsilon(1e-6);
    auto roc = Unwrap(
        eval::EvaluateLinkPrediction(ds.graph, t.graph, P, Q, p, d),
        "link prediction");
    min_auc = std::min(min_auc, roc.auc);
    table.AddRow({"DHTlambda", TablePrinter::Num(lambda, 1),
                  std::to_string(d), TablePrinter::Num(roc.auc, 4)});
  }
  {
    DhtParams p = DhtParams::Exponential();
    int d = p.StepsForEpsilon(1e-6);
    auto roc = Unwrap(
        eval::EvaluateLinkPrediction(ds.graph, t.graph, P, Q, p, d),
        "link prediction");
    table.AddRow({"DHTe", TablePrinter::Num(p.lambda, 3),
                  std::to_string(d), TablePrinter::Num(roc.auc, 4)});
    min_auc = std::min(min_auc, roc.auc);
  }
  std::printf("%s\n", table.Render().c_str());

  bool pass = min_auc > 0.7;
  std::printf("shape check [AUC high and stable across lambda (min %.3f "
              "> 0.7)]: %s\n",
              min_auc, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
