/// \file bench/bench_common.h
/// \brief Shared setup for the table/figure reproduction harnesses.
///
/// Every bench binary prints the rows/series of one of the paper's
/// tables or figures (Sec VII). Absolute times differ from the paper's
/// 2014 testbed; the claims under reproduction are the *shapes*: who
/// wins, by what rough factor, where the curves bend (see DESIGN.md §4
/// and EXPERIMENTS.md).

#ifndef DHTJOIN_BENCH_BENCH_COMMON_H_
#define DHTJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"
#include "datasets/yeast_like.h"
#include "datasets/youtube_like.h"
#include "obs/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace dhtjoin::bench {

/// The bench JSON surface (`BENCH_*.json`) is the shared obs builder:
/// one implementation of key ordering, `", "` separators, and %.9g
/// doubles, so the committed baselines stay byte-compatible with every
/// other export in the tree (obs/json.h, DESIGN.md §11).
using JsonObject = obs::JsonObject;
using obs::JsonArray;
using obs::WriteJsonFile;

/// Average wall seconds of `fn` over `repeats` runs (>= 1).
inline double TimeIt(int repeats, const std::function<void()>& fn) {
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) fn();
  return timer.Seconds() / repeats;
}

/// Aborts with a message when a Status/Result is not OK.
inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// The Yeast stand-in at the paper's exact scale (2.4k nodes, 7.2k
/// undirected edges, 13 partitions).
inline datasets::YeastLikeDataset MakeYeast() {
  std::printf("[setup] generating Yeast-like graph (2.4k nodes, 7.2k "
              "edges, 13 partitions)...\n");
  return Unwrap(datasets::GenerateYeastLike(), "GenerateYeastLike");
}

/// The DBLP stand-in at bench scale (15k authors; the paper's 188k is
/// configurable but slower than useful for a laptop harness).
inline datasets::DblpLikeDataset MakeDblp(NodeId authors = 15000) {
  std::printf("[setup] generating DBLP-like graph (%d authors)...\n",
              authors);
  return Unwrap(
      datasets::GenerateDblpLike(datasets::DblpLikeConfig{
          .num_authors = authors, .seed = 7}),
      "GenerateDblpLike");
}

/// The YouTube stand-in at bench scale (40k users).
inline datasets::YouTubeLikeDataset MakeYouTube(NodeId users = 40000) {
  std::printf("[setup] generating YouTube-like graph (%d users)...\n",
              users);
  return Unwrap(
      datasets::GenerateYouTubeLike(datasets::YouTubeLikeConfig{
          .num_users = users, .seed = 36}),
      "GenerateYouTubeLike");
}

/// The paper's default measure/query parameters (Sec VII-A).
struct PaperDefaults {
  DhtParams dht = DhtParams::Lambda(0.2);
  int d = 8;  // epsilon = 1e-6 via Lemma 1
  std::size_t k = 50;
  std::size_t m = 50;
};

}  // namespace dhtjoin::bench

#endif  // DHTJOIN_BENCH_BENCH_COMMON_H_
