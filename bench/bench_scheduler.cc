/// \file bench/bench_scheduler.cc
/// \brief Fused multi-target scheduler acceptance gates (batch_core.h).
///
/// The motivating shape is a many-target F-IDJ round after pruning has
/// shrunk the live source set: the historical per-target entry point
/// dispatched one AdvancePairs — its own ParallelFor fork/join barrier
/// plus per-call setup (validation, id translation, level grouping,
/// score buffers) — per target per level, so |Q| targets degenerate
/// into thousands of near-empty dispatches whose scheduling overhead
/// rivals the walks themselves. AdvanceMany builds every live (target,
/// level-group, lane-block) of the round into one flat block list
/// behind a SINGLE barrier.
///
/// Gates, on a DBLP-like graph with |Q| targets x a small live source
/// set deepening through the IDJ schedule:
///
///  1. BYTE IDENTITY (fatal in every mode): the fused schedule's
///     scores must equal the per-target loop's bit for bit — the
///     block-enumeration-order argument of DESIGN.md §8, checked.
///  2. BARRIERS: >= 2x fewer ParallelFor dispatches (in practice
///     ~|Q|x: one per round instead of |Q| per round).
///  3. WALL CLOCK: the fused schedule must be faster end to end. The
///     committed dev-box snapshot lives at
///     bench/baselines/BENCH_scheduler.json; CI gates those ratios.
///
/// Usage: bench_scheduler [authors] [--smoke]
/// `--smoke` (CI, laptops) shrinks the workload and demotes the
/// wall-clock gate to a warning (runner scheduling varies) while
/// keeping byte-identity and the barrier gate FATAL. Exits nonzero
/// when an enforced gate fails.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dht/forward_batch.h"
#include "join2/f_idj.h"
#include "obs/trace.h"
#include "util/deadline.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr double kBarrierGate = 2.0;
constexpr double kWallClockGate = 1.05;
// Tracing on the fused hot loop (one span + a handful of attrs per
// ROUND, never per block) must cost <= 2% wall clock vs the same
// schedule untraced (DESIGN.md §11).
constexpr double kTracingOverheadGate = 1.02;

/// The deepening schedule both drivers run: every round advances all
/// |Q| targets' live pairs one doubling level deeper, resuming from
/// the per-pair states — near-empty per-target work, the barrier-bound
/// regime.
struct Workload {
  std::vector<ExtNodeId> sources;  // the shrunken live set
  std::vector<ExtNodeId> targets;  // all of Q, every round
  std::vector<int> levels;
};

/// Per-target loop: one AdvancePairs (one barrier + one setup) per
/// target per round — the historical F-IDJ resume path.
struct LoopResult {
  std::vector<double> scores;  // row-major by target
  int64_t barriers = 0;
};

LoopResult RunPerTargetLoop(const Graph& g, const DhtParams& p,
                            const Workload& w) {
  ForwardWalkerBatch batch(g);
  ForwardBatchStates states;
  LoopResult r;
  r.scores.assign(w.targets.size() * w.sources.size(), 0.0);
  std::vector<std::size_t> slots(w.sources.size());
  for (int l : w.levels) {
    for (std::size_t t = 0; t < w.targets.size(); ++t) {
      for (std::size_t i = 0; i < w.sources.size(); ++i) {
        slots[i] = i * w.targets.size() + t;
      }
      batch.AdvancePairs(p, l, w.sources, slots, w.targets[t], states,
                         [&](std::size_t i, double s) {
                           r.scores[t * w.sources.size() + i] = s;
                         });
    }
  }
  r.barriers = batch.scheduler_barriers();
  return r;
}

/// Fused: ONE AdvanceMany per round across all targets. With `exec`
/// non-null the round runs under lifecycle checks, and when a trace is
/// attached to it, records one span per round — the tracing-overhead
/// measurement below compares exactly these two calls.
LoopResult RunFusedSchedule(const Graph& g, const DhtParams& p,
                            const Workload& w,
                            const ExecContext* exec = nullptr) {
  ForwardWalkerBatch batch(g);
  ForwardBatchStates states;
  LoopResult r;
  r.scores.assign(w.targets.size() * w.sources.size(), 0.0);
  std::vector<std::size_t> slots(w.targets.size() * w.sources.size());
  std::vector<ForwardTargetPlan> plans(w.targets.size());
  for (std::size_t t = 0; t < w.targets.size(); ++t) {
    for (std::size_t i = 0; i < w.sources.size(); ++i) {
      slots[t * w.sources.size() + i] = i * w.targets.size() + t;
    }
    plans[t].target = w.targets[t];
    plans[t].sources = w.sources;
    plans[t].slots = {slots.data() + t * w.sources.size(),
                      w.sources.size()};
    plans[t].out = r.scores.data() + t * w.sources.size();
  }
  for (int l : w.levels) {
    batch.AdvanceMany(p, l, plans, states, /*save_states=*/true, exec);
  }
  r.barriers = batch.scheduler_barriers();
  return r;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  NodeId authors = 15000;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      authors = static_cast<NodeId>(std::atoi(argv[i]));
    }
  }
  if (smoke) authors = std::min<NodeId>(authors, 4000);
  DhtParams p = DhtParams::Lambda(0.2);

  auto ds = MakeDblp(authors);
  const Graph& g = ds.graph;

  // Many targets, few live sources: the per-target loop's worst case.
  // Many targets, few live sources, SHALLOW level deltas: the regime
  // the issue names — each (target, round) advance is a handful of
  // sparse steps over one near-empty lane block, so the per-dispatch
  // overhead (validation, id translation, level grouping, buffer
  // setup, the fork/join itself) rivals the walk work. The live set is
  // LOW-degree sources: their early frontiers stay tiny, which is what
  // keeps the blocks near-empty (a hub's step-2 frontier already costs
  // 100x the dispatch). Deeper rounds flip to dense sweeps whose
  // O(|E|) per block drowns any scheduling cost — that regime never
  // needed this PR.
  Workload w;
  const std::size_t num_targets = smoke ? 512 : 3000;
  const std::size_t num_sources = 4;  // a shrunken live set
  for (std::size_t t = 0; t < num_targets; ++t) {
    w.targets.push_back(ExtNodeId(static_cast<NodeId>(
        (t * 577 + 31) % static_cast<std::size_t>(g.num_nodes()))));
  }
  std::vector<NodeId> by_degree(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    by_degree[static_cast<std::size_t>(u)] = u;
  }
  std::sort(by_degree.begin(), by_degree.end(), [&g](NodeId a, NodeId b) {
    if (g.Degree(IntNodeId(a)) != g.Degree(IntNodeId(b))) {
      return g.Degree(IntNodeId(a)) < g.Degree(IntNodeId(b));
    }
    return a < b;
  });
  // Fresh fixture graph: internal == external ids, so the low-degree
  // prefix can be wrapped directly as external walker sources.
  for (std::size_t i = 0; i < num_sources; ++i) {
    w.sources.push_back(ExtNodeId(by_degree[i]));
  }
  w.levels = {1, 2};
  std::printf("[setup] n=%d m=%lld, %zu targets x %zu live sources "
              "(low-degree), levels 1/2\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()),
              w.targets.size(), w.sources.size());

  // Warm-up + result capture (also the byte-identity evidence).
  LoopResult loop = RunPerTargetLoop(g, p, w);
  LoopResult fused = RunFusedSchedule(g, p, w);
  const bool identical = BitIdentical(loop.scores, fused.scores);

  // Tracing determinism: the same fused schedule with a span-recording
  // trace attached must produce bit-identical scores (spans observe,
  // never steer — DESIGN.md §11). Fatal in every mode.
  ExecContext traced_exec;
  obs::Trace trace(obs::SystemClock::Get());
  traced_exec.set_trace(&trace);
  LoopResult traced = RunFusedSchedule(g, p, w, &traced_exec);
  const bool traced_identical = BitIdentical(fused.scores, traced.scores);

  const int repeats = smoke ? 2 : 3;
  const double loop_ms =
      TimeIt(repeats, [&] { RunPerTargetLoop(g, p, w); }) * 1e3;
  const double fused_ms =
      TimeIt(repeats, [&] { RunFusedSchedule(g, p, w); }) * 1e3;
  const double traced_ms =
      TimeIt(repeats, [&] { RunFusedSchedule(g, p, w, &traced_exec); }) * 1e3;
  const double speedup = loop_ms / std::max(fused_ms, 1e-9);
  const double tracing_overhead = traced_ms / std::max(fused_ms, 1e-9);
  const double barrier_reduction =
      static_cast<double>(loop.barriers) /
      static_cast<double>(std::max<int64_t>(fused.barriers, 1));

  std::printf(
      "\nper-target loop: %8.2f ms, %6lld barriers\n"
      "fused AdvanceMany: %6.2f ms, %6lld barriers\n"
      "=> %.2fx wall clock, %.0fx fewer barriers, byte-identical=%s\n",
      loop_ms, static_cast<long long>(loop.barriers), fused_ms,
      static_cast<long long>(fused.barriers), speedup, barrier_reduction,
      identical ? "yes" : "NO");
  std::printf(
      "traced fused:      %6.2f ms => %.3fx tracing overhead (%lld spans), "
      "byte-identical=%s\n",
      traced_ms, tracing_overhead,
      static_cast<long long>(trace.num_spans()),
      traced_identical ? "yes" : "NO");

  // Context: the real F-IDJ (rewired onto the fused path) on the same
  // graph — its per-round barrier counts are the production trace of
  // the same property.
  FIdjJoin fidj;
  NodeSet P("P", std::vector<ExtNodeId>(w.sources.begin(), w.sources.end()));
  std::vector<ExtNodeId> q_nodes(w.targets.begin(),
                                 w.targets.begin() +
                                     std::min<std::size_t>(w.targets.size(),
                                                           smoke ? 64 : 256));
  std::sort(q_nodes.begin(), q_nodes.end());
  q_nodes.erase(std::unique(q_nodes.begin(), q_nodes.end()), q_nodes.end());
  NodeSet Q("Q", q_nodes);
  CheckOk(fidj.Run(g, p, 8, P, Q, 50).status(), "F-IDJ");
  const TwoWayJoinStats& st = fidj.stats();
  std::printf("\nF-IDJ on |P|=%zu x |Q|=%zu, d=8: %lld barriers over %zu "
              "rounds (per-round:",
              P.size(), Q.size(), static_cast<long long>(st.pool_barriers),
              st.barriers_per_iteration.size());
  for (int64_t b : st.barriers_per_iteration) {
    std::printf(" %lld", static_cast<long long>(b));
  }
  std::printf(")\n");

  JsonObject doc;
  doc.Set("bench", std::string("scheduler"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("num_targets", static_cast<int64_t>(w.targets.size()))
      .Set("num_live_sources", static_cast<int64_t>(w.sources.size()))
      .Set("loop_ms", loop_ms)
      .Set("fused_ms", fused_ms)
      .Set("wall_clock_speedup", speedup)
      .Set("loop_barriers", loop.barriers)
      .Set("fused_barriers", fused.barriers)
      .Set("barrier_reduction", barrier_reduction)
      .Set("byte_identical", identical ? 1 : 0)
      .Set("traced_ms", traced_ms)
      .Set("tracing_overhead", tracing_overhead)
      .Set("traced_byte_identical", traced_identical ? 1 : 0)
      .Set("fidj_pool_barriers", st.pool_barriers)
      .Set("fidj_rounds",
           static_cast<int64_t>(st.barriers_per_iteration.size()))
      .Set("gate_barrier_reduction", kBarrierGate)
      .Set("gate_wall_clock", kWallClockGate)
      .Set("gate_tracing_overhead", kTracingOverheadGate);
  WriteJsonFile("BENCH_scheduler.json", doc.ToString());
  std::printf("\nwrote BENCH_scheduler.json (%.2fx wall, %.0fx barriers)\n",
              speedup, barrier_reduction);

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "FAIL: fused schedule is not byte-identical to "
                         "the per-target loop\n");
    ok = false;  // fatal in every mode
  }
  if (barrier_reduction < kBarrierGate) {
    std::fprintf(stderr,
                 "FAIL: barrier reduction %.2fx below the %.2fx gate\n",
                 barrier_reduction, kBarrierGate);
    ok = false;  // structural, not timing-dependent: fatal in every mode
  }
  if (speedup < kWallClockGate) {
    std::fprintf(stderr,
                 "%s: fused wall-clock speedup %.2fx below the %.2fx gate\n",
                 smoke ? "WARN (smoke)" : "FAIL", speedup, kWallClockGate);
    ok = ok && smoke;
  }
  if (!traced_identical) {
    std::fprintf(stderr, "FAIL: tracing changed the fused schedule's "
                         "scores\n");
    ok = false;  // fatal in every mode: spans must not steer
  }
  if (tracing_overhead > kTracingOverheadGate) {
    std::fprintf(stderr,
                 "%s: tracing overhead %.3fx above the %.3fx gate\n",
                 smoke ? "WARN (smoke)" : "FAIL", tracing_overhead,
                 kTracingOverheadGate);
    ok = ok && smoke;  // timing-dependent: warn-only under --smoke
  }
  return ok ? 0 : 1;
}
