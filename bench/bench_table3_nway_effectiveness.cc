/// \file bench/bench_table3_nway_effectiveness.cc
/// \brief Reproduces paper Table III: top-5 3-way joins on DBLP with a
/// triangle vs a chain query graph over DB / AI / SYS experts.
///
/// Paper shape: the triangle answers are triples that all work closely
/// together; the chain (AI-DB-SYS) answers reuse strong DB hubs and do
/// not require AI-SYS affinity, so the two result lists differ. We
/// verify the lists differ and that every triangle answer's weakest edge
/// (MIN f) is at least as strong as the chain ranking suggests.

#include <set>

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

std::string AuthorLabel(NodeId id) { return "a" + std::to_string(id); }

std::vector<TupleAnswer> RunJoin(const datasets::DblpLikeDataset& ds,
                                 bool triangle, const PaperDefaults& def,
                                 double* seconds) {
  NodeSet db = Unwrap(ds.Area("DB"), "Area").TopByDegree(ds.graph, 100);
  NodeSet ai = Unwrap(ds.Area("AI"), "Area").TopByDegree(ds.graph, 100);
  NodeSet sys = Unwrap(ds.Area("SYS"), "Area").TopByDegree(ds.graph, 100);
  QueryGraph q;
  int a = q.AddNodeSet(db);
  int b = q.AddNodeSet(ai);
  int c = q.AddNodeSet(sys);
  if (triangle) {
    CheckOk(q.AddBidirectionalEdge(a, b), "edge");
    CheckOk(q.AddBidirectionalEdge(b, c), "edge");
    CheckOk(q.AddBidirectionalEdge(a, c), "edge");
  } else {
    CheckOk(q.AddBidirectionalEdge(b, a), "edge");  // AI - DB
    CheckOk(q.AddBidirectionalEdge(a, c), "edge");  // DB - SYS
  }
  PartialJoin pji(
      PartialJoin::Options{.m = def.m, .incremental = true});
  MinAggregate f;
  WallTimer timer;
  auto result = Unwrap(pji.Run(ds.graph, def.dht, def.d, q, f, 5), "PJ-i");
  *seconds = timer.Seconds();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Table III: top-5 3-way join on DBLP (PJ-i) ===\n");
  std::printf("paper: triangle and chain query graphs return different\n");
  std::printf("expert triples; triangle requires ALL pairs close.\n\n");

  auto ds = MakeDblp();
  PaperDefaults def;

  double tri_secs = 0.0, chain_secs = 0.0;
  auto triangle = RunJoin(ds, /*triangle=*/true, def, &tri_secs);
  auto chain = RunJoin(ds, /*triangle=*/false, def, &chain_secs);

  TablePrinter table("Top-5 3-way join on DBLP-like (MIN aggregate)",
                     {"rank", "tri:DB", "tri:AI", "tri:SYS", "tri:f",
                      "chn:DB", "chn:AI", "chn:SYS", "chn:f"});
  for (std::size_t i = 0; i < 5; ++i) {
    auto cell = [&](const std::vector<TupleAnswer>& list,
                    std::size_t attr) -> std::string {
      if (i >= list.size()) return "-";
      return AuthorLabel(list[i].nodes[attr]);
    };
    auto fval = [&](const std::vector<TupleAnswer>& list) -> std::string {
      if (i >= list.size()) return "-";
      return TablePrinter::Num(list[i].f, 4);
    };
    table.AddRow({std::to_string(i + 1), cell(triangle, 0),
                  cell(triangle, 1), cell(triangle, 2), fval(triangle),
                  cell(chain, 0), cell(chain, 1), cell(chain, 2),
                  fval(chain)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("triangle join: %s, chain join: %s\n",
              TablePrinter::Secs(tri_secs).c_str(),
              TablePrinter::Secs(chain_secs).c_str());

  // Shape check: the two rankings differ (the paper's qualitative claim).
  std::set<std::vector<NodeId>> tri_set, chain_set;
  for (const auto& t : triangle) tri_set.insert(t.nodes);
  for (const auto& t : chain) chain_set.insert(t.nodes);
  bool differ = tri_set != chain_set;
  std::printf("shape check [triangle and chain answers differ]: %s\n",
              differ ? "PASS" : "FAIL");
  return differ ? 0 : 1;
}
