/// \file bench/bench_cluster.cc
/// \brief Chaos benchmark for the fault-tolerant serving tier: real
/// worker PROCESSES (fork + loopback sockets, cluster/worker.h) driven
/// by a ClusterCoordinator through every fault class the tier claims
/// to survive — per-connection kill faults at each execution boundary,
/// corrupted and truncated reply frames, a straggler that must be
/// hedged, a worker SIGKILLed mid-stream, and a fully dead cluster
/// that must degrade to local execution.
///
/// Acceptance gates (exit nonzero on violation):
///  * BYTE-IDENTITY: every completed answer equals the single-process
///    B-IDJ reference bit-for-bit (scores compared as u64 bit
///    patterns), whatever faults the routing survived;
///  * ZERO HANGS / CRASHES: every query resolves with OK or a typed
///    Status under its wall budget — the stream always finishes;
///  * FAULT COVERAGE: failovers, hedges, checksum rejects, and local
///    fallbacks all actually fired (a chaos run that exercised
///    nothing proves nothing);
///  * DETECTION: a SIGKILLed worker is marked unhealthy by heartbeat
///    probes, and a dead cluster without local fallback surfaces a
///    typed error instead of wedging.
///
/// `--smoke` (CI, laptops) shrinks the graph and the stream; the full
/// run writes the committed dev-box baseline
/// (bench/baselines/BENCH_cluster.json).

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "join2/b_idj.h"
#include "serve/workload.h"
#include "util/deadline.h"

using namespace dhtjoin;           // NOLINT
using namespace dhtjoin::bench;    // NOLINT
using namespace dhtjoin::cluster;  // NOLINT

namespace {

/// Per-query wall budget. Generous: it exists to turn a genuine hang
/// into a typed kDeadlineExceeded instead of a wedged bench, not to
/// exercise degradation (no query on these graphs needs 1% of it).
constexpr double kQueryBudgetSeconds = 30.0;

struct Tally {
  int64_t completed = 0;
  int64_t mismatches = 0;  // gate: must stay 0
  int64_t unexpected = 0;  // gate: must stay 0
  int64_t retries = 0;
  int64_t failovers = 0;
  int64_t hedged = 0;
  int64_t hedge_won = 0;
  int64_t local_fallbacks = 0;

  void Merge(const Tally& other) {
    completed += other.completed;
    mismatches += other.mismatches;
    unexpected += other.unexpected;
    retries += other.retries;
    failovers += other.failovers;
    hedged += other.hedged;
    hedge_won += other.hedge_won;
    local_fallbacks += other.local_fallbacks;
  }
};

bool BytesIdentical(const std::vector<ScoredPair>& got,
                    const std::vector<ScoredPair>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].p != want[i].p || got[i].q != want[i].q ||
        std::bit_cast<uint64_t>(got[i].score) !=
            std::bit_cast<uint64_t>(want[i].score)) {
      return false;
    }
  }
  return true;
}

/// Runs one request through the coordinator under the hang budget and
/// accounts the outcome against the template reference.
void RunOne(ClusterCoordinator& coord, const serve::TwoWayRequest& req,
            const std::vector<ScoredPair>& reference, Tally& tally) {
  ExecContext exec;
  exec.deadline = Deadline::AfterSeconds(kQueryBudgetSeconds);
  ClusterQueryStats cqs;
  auto result = coord.TwoWay(req.P, req.Q, req.k, &cqs, &exec);
  tally.retries += cqs.retries;
  if (cqs.failover) ++tally.failovers;
  if (cqs.hedged) ++tally.hedged;
  if (cqs.hedge_won) ++tally.hedge_won;
  if (cqs.local_fallback) ++tally.local_fallbacks;
  if (!result.ok()) {
    ++tally.unexpected;
    std::fprintf(stderr, "UNEXPECTED STATUS: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  ++tally.completed;
  if (!BytesIdentical(*result, reference)) {
    ++tally.mismatches;
    std::fprintf(stderr, "BYTE-IDENTITY VIOLATION (routed answer diverged "
                         "from the single-process reference)\n");
  }
}

/// Sequentially replays requests [begin, end) through `coord`.
Tally RunRange(ClusterCoordinator& coord,
               const std::vector<serve::TwoWayRequest>& requests,
               std::size_t begin, std::size_t end,
               const std::vector<std::vector<ScoredPair>>& reference) {
  Tally tally;
  for (std::size_t i = begin; i < end && i < requests.size(); ++i) {
    RunOne(coord, requests[i], reference[requests[i].template_id], tally);
  }
  return tally;
}

int64_t CounterValue(const obs::MetricsSnapshot& snap, const char* name) {
  const obs::CounterSnapshot* c = snap.FindCounter(name);
  return c == nullptr ? 0 : c->value;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  auto ds = smoke ? MakeDblp(4000) : MakeDblp();
  const Graph& g = ds.graph;
  PaperDefaults defaults;
  const DhtParams& p = defaults.dht;
  const int d = defaults.d;

  serve::WorkloadOptions wopts;
  wopts.num_requests = smoke ? 96 : 240;
  wopts.num_templates = smoke ? 12 : 16;
  wopts.zipf_s = 1.0;
  wopts.set_size = smoke ? 60 : 100;
  wopts.k = defaults.k;
  wopts.seed = 43;
  auto workload =
      Unwrap(serve::GenerateZipfianTwoWayWorkload(g, ds.areas, wopts),
             "GenerateZipfianTwoWayWorkload");
  const std::vector<serve::TwoWayRequest>& requests = workload.requests;

  // Phase slice sizes over the shared stream.
  const std::size_t kIdentityN = smoke ? 24 : 80;
  const std::size_t kKillChaosN = smoke ? 16 : 40;
  const std::size_t kCorruptN = smoke ? 12 : 30;
  const std::size_t kHedgeN = smoke ? 10 : 20;
  const std::size_t kSigkillN = smoke ? 20 : 40;
  const std::size_t kFallbackN = smoke ? 5 : 10;

  std::printf("[setup] chaos stream: %zu requests over %zu templates "
              "(zipf %.1f, |P|=|Q|=%zu, k=%zu, d=%d)\n",
              requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k, d);

  // ---- Spawn the whole worker cast BEFORE any thread exists in this
  // process (fork clones only the calling thread; the coordinators,
  // the reference services, and phase E's client threads all come
  // later). The graph is inherited copy-on-write, so six workers cost
  // pages, not six CSR copies.
  std::printf("[setup] forking 6 worker processes (2 clean, kill-chaos, "
              "corrupt/truncate, straggler, sigkill victim)...\n");

  WorkerOptions clean;
  auto w_clean0 = Unwrap(SpawnWorkerProcess(g, p, d, clean), "spawn clean0");
  auto w_clean1 = Unwrap(SpawnWorkerProcess(g, p, d, clean), "spawn clean1");

  WorkerOptions killer;
  killer.chaos.seed = 0xC1A05ULL;
  killer.chaos.p_kill_before_execute = 0.25;
  killer.chaos.p_kill_at_level = 0.25;
  killer.chaos.p_kill_before_reply = 0.25;
  killer.chaos.kill_level = 2;
  auto w_killer = Unwrap(SpawnWorkerProcess(g, p, d, killer), "spawn killer");

  WorkerOptions corrupter;
  corrupter.chaos.seed = 0xBADF00DULL;
  corrupter.chaos.p_corrupt_reply = 0.5;
  corrupter.chaos.p_truncate_reply = 0.3;
  auto w_corrupt =
      Unwrap(SpawnWorkerProcess(g, p, d, corrupter), "spawn corrupter");

  WorkerOptions straggler;
  straggler.chaos.seed = 0x51071ULL;
  straggler.chaos.p_delay_reply = 1.0;
  straggler.chaos.delay_micros = 120000;  // 120 ms, far past the hedge clamp
  auto w_slow = Unwrap(SpawnWorkerProcess(g, p, d, straggler), "spawn slow");

  auto w_victim = Unwrap(SpawnWorkerProcess(g, p, d, clean), "spawn victim");

  std::printf("[setup] workers on ports %u %u %u %u %u %u\n",
              w_clean0.port, w_clean1.port, w_killer.port, w_corrupt.port,
              w_slow.port, w_victim.port);

  // ---- Reference answers per template: the same fresh B-IDJ oracle
  // the robustness bench uses. Computed in-parent after forking.
  std::vector<std::vector<ScoredPair>> reference(workload.num_templates);
  std::vector<char> have_reference(workload.num_templates, 0);
  for (const serve::TwoWayRequest& req : requests) {
    if (have_reference[req.template_id]) continue;
    BIdjJoin join;
    reference[req.template_id] =
        Unwrap(join.Run(g, p, d, req.P, req.Q, req.k), "BIdjJoin reference");
    have_reference[req.template_id] = 1;
  }

  Tally total;
  std::size_t cursor = 0;

  CoordinatorOptions base;
  base.hedge.enabled = false;
  base.retry.backoff.initial_micros = 500;
  base.retry.backoff.max_micros = 20000;
  // Chaos phases keep hammering the faulty worker instead of routing
  // around it after two misses — more fault hits per query, and the
  // health axis is measured separately in phase E.
  CoordinatorOptions chaos_opts = base;
  chaos_opts.health.miss_threshold = 1000000;

  // ---- Phase A: clean byte-identity + RPC cost over the wire.
  double identity_seconds = 0.0;
  {
    std::printf("[phase A] %zu queries across 2 clean workers...\n",
                kIdentityN);
    ClusterCoordinator coord(
        g, p, d,
        {WorkerEndpoint{w_clean0.port}, WorkerEndpoint{w_clean1.port}}, base);
    WallTimer timer;
    Tally t =
        RunRange(coord, requests, cursor, cursor + kIdentityN, reference);
    identity_seconds = timer.Seconds();
    cursor += kIdentityN;
    std::printf("          %lld completed, %lld mismatches, %.2f ms/query\n",
                static_cast<long long>(t.completed),
                static_cast<long long>(t.mismatches),
                1e3 * identity_seconds / static_cast<double>(kIdentityN));
    total.Merge(t);
  }

  // ---- Phase B: kill-chaos worker severing connections at the
  // import / deepening-round / write-back boundaries; every query must
  // fail over to the clean worker with identical bytes.
  int64_t killchaos_failovers = 0;
  {
    std::printf("[phase B] %zu queries with a kill-chaos primary "
                "(75%% sever at a random boundary)...\n",
                kKillChaosN);
    ClusterCoordinator coord(
        g, p, d,
        {WorkerEndpoint{w_killer.port}, WorkerEndpoint{w_clean0.port}},
        chaos_opts);
    Tally t =
        RunRange(coord, requests, cursor, cursor + kKillChaosN, reference);
    cursor += kKillChaosN;
    killchaos_failovers = t.failovers;
    std::printf("          %lld completed, %lld failovers, %lld retries\n",
                static_cast<long long>(t.completed),
                static_cast<long long>(t.failovers),
                static_cast<long long>(t.retries));
    total.Merge(t);
  }

  // ---- Phase C: corrupted and truncated reply frames; the checksum /
  // length verification must reject them and the retry must land on
  // the clean worker.
  int64_t checksum_rejects = 0;
  {
    std::printf("[phase C] %zu queries with a corrupt/truncate primary...\n",
                kCorruptN);
    ClusterCoordinator coord(
        g, p, d,
        {WorkerEndpoint{w_corrupt.port}, WorkerEndpoint{w_clean0.port}},
        chaos_opts);
    Tally t = RunRange(coord, requests, cursor, cursor + kCorruptN, reference);
    cursor += kCorruptN;
    checksum_rejects = CounterValue(coord.SnapshotMetrics(),
                                    "cluster.frame.checksum_rejects");
    std::printf("          %lld completed, %lld checksum rejects, %lld "
                "failovers\n",
                static_cast<long long>(t.completed),
                static_cast<long long>(checksum_rejects),
                static_cast<long long>(t.failovers));
    total.Merge(t);
  }

  // ---- Phase D: hedging a straggler. The slow worker holds every
  // reply for 120 ms; with warmup 0 and a 2 ms floor the hedge fires
  // and the clean worker's reply wins — still byte-identical.
  {
    std::printf("[phase D] %zu queries with a 120 ms straggler, hedging "
                "enabled...\n",
                kHedgeN);
    CoordinatorOptions hedged = chaos_opts;
    hedged.hedge.enabled = true;
    hedged.hedge.quantile = 0.5;
    hedged.hedge.min_delay_micros = 2000;
    hedged.hedge.max_delay_micros = 5000;
    hedged.hedge.warmup_samples = 0;
    ClusterCoordinator coord(
        g, p, d,
        {WorkerEndpoint{w_slow.port}, WorkerEndpoint{w_clean1.port}}, hedged);
    Tally t = RunRange(coord, requests, cursor, cursor + kHedgeN, reference);
    cursor += kHedgeN;
    std::printf("          %lld completed, %lld hedged, %lld hedge wins\n",
                static_cast<long long>(t.completed),
                static_cast<long long>(t.hedged),
                static_cast<long long>(t.hedge_won));
    total.Merge(t);
  }

  // ---- Phase E: SIGKILL a worker while concurrent clients are mid-
  // stream; every query still completes byte-identically on the
  // survivor, and heartbeat probes mark the corpse unhealthy.
  bool victim_detected_dead = false;
  int64_t sigkill_failovers = 0;
  {
    std::printf("[phase E] %zu queries from 2 client threads; SIGKILL the "
                "primary mid-stream...\n",
                kSigkillN);
    ClusterCoordinator coord(
        g, p, d,
        {WorkerEndpoint{w_victim.port}, WorkerEndpoint{w_clean1.port}}, base);
    const std::size_t begin = cursor;
    const std::size_t end = cursor + kSigkillN;
    cursor = end;
    std::atomic<std::size_t> next{begin};
    std::mutex agg_mu;
    Tally t;
    auto client = [&] {
      Tally local;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= end || i >= requests.size()) break;
        RunOne(coord, requests[i], reference[requests[i].template_id], local);
      }
      const std::lock_guard<std::mutex> lock(agg_mu);
      t.Merge(local);
    };
    std::thread c0(client), c1(client);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    KillWorkerProcess(w_victim);
    c0.join();
    c1.join();
    // Two probe rounds: the first records the miss, the second crosses
    // the default threshold.
    (void)coord.PingAll();
    (void)coord.PingAll();
    victim_detected_dead = !coord.WorkerHealthy(0) && coord.NumHealthy() == 1;
    sigkill_failovers = t.failovers;
    std::printf("          %lld completed, %lld failovers, victim "
                "unhealthy: %s\n",
                static_cast<long long>(t.completed),
                static_cast<long long>(t.failovers),
                victim_detected_dead ? "yes" : "NO");
    total.Merge(t);
  }

  // ---- Phase F: the whole cluster is dead. With local fallback the
  // coordinator degrades to in-process execution (identical bytes);
  // without it, a typed error surfaces instead of a hang.
  bool typed_error_when_no_fallback = false;
  {
    std::printf("[phase F] %zu queries against a dead cluster, local "
                "fallback on...\n",
                kFallbackN);
    ClusterCoordinator coord(g, p, d, {WorkerEndpoint{w_victim.port}}, base);
    Tally t = RunRange(coord, requests, cursor, cursor + kFallbackN,
                       reference);
    cursor += kFallbackN;
    std::printf("          %lld completed via local fallback\n",
                static_cast<long long>(t.local_fallbacks));
    total.Merge(t);

    CoordinatorOptions strict = base;
    strict.allow_local_fallback = false;
    ClusterCoordinator no_fb(g, p, d, {WorkerEndpoint{w_victim.port}},
                             strict);
    ExecContext exec;
    exec.deadline = Deadline::AfterSeconds(kQueryBudgetSeconds);
    auto result = no_fb.TwoWay(requests[0].P, requests[0].Q, requests[0].k,
                               nullptr, &exec);
    typed_error_when_no_fallback = !result.ok();
    std::printf("          fallback disabled -> %s\n",
                result.ok() ? "OK (unexpected)"
                            : result.status().ToString().c_str());
  }

  // ---- Graceful teardown: every surviving worker must drain and
  // exit 0 on SIGTERM.
  int64_t clean_worker_exits = 0;
  for (const SpawnedWorker& w : {w_clean0, w_clean1, w_killer, w_corrupt,
                                 w_slow}) {
    if (StopWorkerProcess(w, 5000).ok()) ++clean_worker_exits;
  }
  std::printf("[teardown] %lld/5 surviving workers exited 0 on SIGTERM\n",
              static_cast<long long>(clean_worker_exits));

  const int64_t queries_total = static_cast<int64_t>(
      kIdentityN + kKillChaosN + kCorruptN + kHedgeN + kSigkillN + kFallbackN);

  std::printf("\n==== cluster chaos summary ====\n");
  std::printf("  queries:        %lld (completed %lld)\n",
              static_cast<long long>(queries_total),
              static_cast<long long>(total.completed));
  std::printf("  mismatches:     %lld\n",
              static_cast<long long>(total.mismatches));
  std::printf("  unexpected:     %lld\n",
              static_cast<long long>(total.unexpected));
  std::printf("  retries:        %lld, failovers: %lld\n",
              static_cast<long long>(total.retries),
              static_cast<long long>(total.failovers));
  std::printf("  hedged:         %lld (won %lld)\n",
              static_cast<long long>(total.hedged),
              static_cast<long long>(total.hedge_won));
  std::printf("  checksum rejects: %lld, local fallbacks: %lld\n",
              static_cast<long long>(checksum_rejects),
              static_cast<long long>(total.local_fallbacks));

  bool ok = true;
  auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    ok = ok && pass;
  };
  gate(total.completed == queries_total && total.unexpected == 0,
       "every admitted query completed (zero hangs, zero unexpected "
       "statuses)");
  gate(total.mismatches == 0,
       "every completed answer byte-identical to the single-process "
       "reference");
  gate(killchaos_failovers > 0, "kill-chaos failovers fired");
  gate(checksum_rejects > 0, "corrupt/truncated frames were caught by "
                             "checksum/length verification");
  gate(total.hedged > 0 && total.hedge_won > 0,
       "hedges fired against the straggler and won");
  gate(victim_detected_dead,
       "heartbeats marked the SIGKILLed worker unhealthy");
  gate(total.local_fallbacks >= static_cast<int64_t>(kFallbackN),
       "dead cluster degraded to byte-identical local execution");
  gate(typed_error_when_no_fallback,
       "dead cluster without fallback surfaced a typed error");
  gate(clean_worker_exits == 5,
       "all surviving workers drained and exited 0 on SIGTERM");

  JsonObject doc;
  doc.Set("bench", std::string("cluster"))
      .Set("mode", std::string(smoke ? "smoke" : "full"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("workers_spawned", static_cast<int64_t>(6))
      .Set("queries_total", queries_total)
      .Set("completed", total.completed)
      .Set("identity_mismatches", total.mismatches)
      .Set("unexpected_statuses", total.unexpected)
      .Set("identity_ms_per_query",
           1e3 * identity_seconds / static_cast<double>(kIdentityN))
      .Set("retries", total.retries)
      .Set("failovers", total.failovers)
      .Set("killchaos_failovers", killchaos_failovers)
      .Set("sigkill_failovers", sigkill_failovers)
      .Set("hedged", total.hedged)
      .Set("hedge_won", total.hedge_won)
      .Set("checksum_rejects", checksum_rejects)
      .Set("local_fallbacks", total.local_fallbacks)
      .Set("clean_worker_exits", clean_worker_exits)
      .Set("byte_identical", static_cast<int64_t>(total.mismatches == 0))
      .Set("zero_hangs",
           static_cast<int64_t>(total.completed == queries_total &&
                                total.unexpected == 0))
      .Set("victim_detected_dead",
           static_cast<int64_t>(victim_detected_dead))
      .Set("typed_error_when_no_fallback",
           static_cast<int64_t>(typed_error_when_no_fallback));
  WriteJsonFile("BENCH_cluster.json", doc.ToString());
  std::printf("\nwrote BENCH_cluster.json\n");

  if (!ok) {
    std::fprintf(stderr, "\nCLUSTER CHAOS GATES FAILED\n");
    return 1;
  }
  std::printf("all cluster chaos gates passed\n");
  return 0;
}
