/// \file bench/bench_micro_walkers.cc
/// \brief Micro timings of the DHT engine primitives, comparing the
/// three propagation engines the repo now ships:
///   dense    — the seed's full O(n + m)-per-step sweep,
///   adaptive — the frontier-adaptive sparse/dense engine,
///   batched  — BackwardWalkerBatch (kLaneWidth walkers per edge pass,
///              blocks fanned across the thread pool).
/// The d-step backward evaluation on the DBLP-like dataset is the
/// paper-critical inner loop (B-BJ/B-IDJ bottom out in it); results are
/// printed and also written to BENCH_walkers.json for the perf
/// trajectory. Score agreement between engines is checked to 1e-12 as
/// part of the run, so a fast-but-wrong engine fails loudly here.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/bounds.h"
#include "dht/forward.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

/// Targets/sources used for the backward comparison; big enough to
/// amortize per-walk noise, small enough that the dense engine finishes.
constexpr std::size_t kNumTargets = 64;
constexpr std::size_t kNumSources = 200;

struct BackwardResult {
  double dense_sec_per_target = 0.0;
  double adaptive_sec_per_target = 0.0;
  double batched_sec_per_target = 0.0;
  double max_abs_diff = 0.0;  // adaptive & batched vs dense scores
};

BackwardResult RunBackwardComparison(const Graph& g, const DhtParams& p,
                                     int d,
                                     const std::vector<NodeId>& targets,
                                     const std::vector<NodeId>& sources,
                                     int repeats) {
  BackwardResult r;

  // Dense reference: one sequential walker per target (the seed engine).
  std::vector<double> dense_scores(targets.size() * sources.size());
  r.dense_sec_per_target = TimeIt(repeats, [&] {
    BackwardWalker walker(g, PropagationMode::kDense);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      walker.Reset(p, targets[t]);
      walker.Advance(d);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        dense_scores[t * sources.size() + s] = walker.Score(sources[s]);
      }
    }
  }) / static_cast<double>(targets.size());

  // Frontier-adaptive, still one walker per target.
  std::vector<double> adaptive_scores(dense_scores.size());
  r.adaptive_sec_per_target = TimeIt(repeats, [&] {
    BackwardWalker walker(g, PropagationMode::kAdaptive);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      walker.Reset(p, targets[t]);
      walker.Advance(d);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        adaptive_scores[t * sources.size() + s] = walker.Score(sources[s]);
      }
    }
  }) / static_cast<double>(targets.size());

  // Sparse + batched: the B-BJ/B-IDJ configuration. The batch (and its
  // thread pool) is a fixture, mirroring how joins reuse one evaluator
  // across Run() calls — thread spawn must not be charged per repeat.
  std::vector<double> batched_scores;
  BackwardWalkerBatch batch(g);
  r.batched_sec_per_target = TimeIt(repeats, [&] {
    batched_scores = batch.Run(p, d, targets, sources);
  }) / static_cast<double>(targets.size());

  for (std::size_t i = 0; i < dense_scores.size(); ++i) {
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(adaptive_scores[i] - dense_scores[i]));
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(batched_scores[i] - dense_scores[i]));
  }
  return r;
}

}  // namespace

int main() {
  auto ds = MakeDblp();
  const Graph& g = ds.graph;
  DhtParams p = DhtParams::Lambda(0.2);
  std::printf("[setup] n=%d m=%lld\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));

  // Spread targets across the id space; sources likewise.
  std::vector<NodeId> targets, sources;
  for (std::size_t i = 0; i < kNumTargets; ++i) {
    targets.push_back(static_cast<NodeId>(
        (i * 131 + 17) % static_cast<std::size_t>(g.num_nodes())));
  }
  for (std::size_t i = 0; i < kNumSources; ++i) {
    sources.push_back(static_cast<NodeId>(
        (i * 37 + 5) % static_cast<std::size_t>(g.num_nodes())));
  }

  std::vector<JsonObject> rows;
  double headline_speedup = 0.0;
  double headline_diff = 0.0;
  std::printf("\nbackward d-step evaluation, per target (DBLP-like):\n");
  std::printf("%4s %14s %14s %14s %9s %9s %12s\n", "d", "dense(ms)",
              "adaptive(ms)", "batched(ms)", "adp x", "batch x", "max|diff|");
  for (int d : {2, 8, 16}) {
    const int repeats = d <= 8 ? 3 : 2;
    BackwardResult r =
        RunBackwardComparison(g, p, d, targets, sources, repeats);
    double adaptive_speedup = r.dense_sec_per_target /
                              std::max(r.adaptive_sec_per_target, 1e-12);
    double batched_speedup = r.dense_sec_per_target /
                             std::max(r.batched_sec_per_target, 1e-12);
    std::printf("%4d %14.3f %14.3f %14.3f %8.1fx %8.1fx %12.2e\n", d,
                r.dense_sec_per_target * 1e3, r.adaptive_sec_per_target * 1e3,
                r.batched_sec_per_target * 1e3, adaptive_speedup,
                batched_speedup, r.max_abs_diff);
    if (r.max_abs_diff > 1e-12) {
      std::fprintf(stderr,
                   "FAIL: engines disagree beyond 1e-12 at d=%d (%.3e)\n", d,
                   r.max_abs_diff);
      return 1;
    }
    if (d == 8) {  // the paper's default depth is the headline number
      headline_speedup = batched_speedup;
      headline_diff = r.max_abs_diff;
    }
    rows.push_back(JsonObject()
                       .Set("d", d)
                       .Set("dense_ms_per_target", r.dense_sec_per_target * 1e3)
                       .Set("adaptive_ms_per_target",
                            r.adaptive_sec_per_target * 1e3)
                       .Set("batched_ms_per_target",
                            r.batched_sec_per_target * 1e3)
                       .Set("adaptive_speedup", adaptive_speedup)
                       .Set("batched_speedup", batched_speedup)
                       .Set("max_abs_score_diff", r.max_abs_diff));
  }

  // Forward single-pair micro numbers (the F-BJ inner loop).
  std::printf("\nforward pair computation (d=8):\n");
  NodeId u = ds.areas[0][0];
  NodeId v = ds.areas[1][0];
  double fwd_dense = 0.0, fwd_adaptive = 0.0;
  {
    ForwardWalker dense(g, PropagationMode::kDense);
    ForwardWalker adaptive(g, PropagationMode::kAdaptive);
    fwd_dense = TimeIt(3, [&] { dense.Compute(p, 8, u, v); });
    fwd_adaptive = TimeIt(3, [&] { adaptive.Compute(p, 8, u, v); });
    if (std::abs(dense.Score() - adaptive.Score()) > 1e-12) {
      std::fprintf(stderr, "FAIL: forward engines disagree\n");
      return 1;
    }
  }
  std::printf("  dense %.3f ms, adaptive %.3f ms (%.1fx)\n", fwd_dense * 1e3,
              fwd_adaptive * 1e3, fwd_dense / std::max(fwd_adaptive, 1e-12));

  // Y-bound sweep regression canary (B-IDJ-Y and the incremental join
  // still pay this dense d-step sweep up front).
  NodeSet yp = ds.areas[0].TopByDegree(g, 100);
  NodeSet yq = ds.areas[1].TopByDegree(g, 100);
  double ybound_sec = TimeIt(3, [&] {
    YBoundTable table(g, p, 8, yp, yq);
    if (table.Bound(0, 0) < 0.0) std::abort();  // keep the table alive
  });
  std::printf("\nY-bound table construction (d=8, |P|=|Q|=100): %.3f ms\n",
              ybound_sec * 1e3);

  JsonObject doc;
  doc.Set("bench", std::string("micro_walkers"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("num_targets", static_cast<int64_t>(targets.size()))
      .Set("num_sources", static_cast<int64_t>(sources.size()))
      .Set("lane_width", BackwardWalkerBatch::kLaneWidth)
      .SetRaw("backward", JsonArray(rows))
      .Set("forward_pair_dense_ms", fwd_dense * 1e3)
      .Set("forward_pair_adaptive_ms", fwd_adaptive * 1e3)
      .Set("ybound_table_ms", ybound_sec * 1e3)
      .Set("headline_sparse_batched_speedup_d8", headline_speedup)
      .Set("headline_max_abs_score_diff_d8", headline_diff);
  WriteJsonFile("BENCH_walkers.json", doc.ToString());
  std::printf("\nwrote BENCH_walkers.json (headline d=8 sparse+batched "
              "speedup: %.1fx)\n", headline_speedup);
  return 0;
}
