/// \file bench/bench_micro_walkers.cc
/// \brief Micro timings of the DHT engine primitives, comparing the
/// propagation engines the repo now ships:
///   dense    — the seed's full O(n + m)-per-step sweep,
///   adaptive — the frontier-adaptive sparse/dense engine,
///   batched  — BackwardWalkerBatch / ForwardWalkerBatch (kLaneWidth
///              walkers per edge pass, blocks fanned across the pool).
/// The d-step backward evaluation on the DBLP-like dataset is the
/// paper-critical inner loop (B-BJ/B-IDJ bottom out in it); the forward
/// pair sweep is the slow side of Fig. 9(a) that the forward batch
/// lifts. Results are printed and also written to BENCH_walkers.json
/// for the perf trajectory (a committed dev-box baseline lives at
/// bench/baselines/BENCH_walkers.json). Score agreement between engines
/// is checked to 1e-12 as part of the run, and the resumable deepening
/// paths of B-IDJ / F-IDJ are checked byte-identical to their restart
/// schedules with strictly fewer walk_steps — a fast-but-wrong engine
/// fails loudly here.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/bounds.h"
#include "dht/forward.h"
#include "dht/forward_batch.h"
#include "graph/reorder.h"
#include "join2/b_idj.h"
#include "join2/f_idj.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

/// Targets/sources used for the backward comparison; big enough to
/// amortize per-walk noise, small enough that the dense engine finishes.
constexpr std::size_t kNumTargets = 64;
constexpr std::size_t kNumSources = 200;

struct BackwardResult {
  double dense_sec_per_target = 0.0;
  double adaptive_sec_per_target = 0.0;
  double batched_sec_per_target = 0.0;
  double max_abs_diff = 0.0;  // adaptive & batched vs dense scores
};

BackwardResult RunBackwardComparison(const Graph& g, const DhtParams& p,
                                     int d,
                                     const std::vector<ExtNodeId>& targets,
                                     const std::vector<ExtNodeId>& sources,
                                     int repeats) {
  BackwardResult r;

  // Dense reference: one sequential walker per target (the seed engine).
  std::vector<double> dense_scores(targets.size() * sources.size());
  r.dense_sec_per_target = TimeIt(repeats, [&] {
    BackwardWalker walker(g, PropagationMode::kDense);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      walker.Reset(p, targets[t]);
      walker.Advance(d);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        dense_scores[t * sources.size() + s] = walker.Score(sources[s]);
      }
    }
  }) / static_cast<double>(targets.size());

  // Frontier-adaptive, still one walker per target.
  std::vector<double> adaptive_scores(dense_scores.size());
  r.adaptive_sec_per_target = TimeIt(repeats, [&] {
    BackwardWalker walker(g, PropagationMode::kAdaptive);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      walker.Reset(p, targets[t]);
      walker.Advance(d);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        adaptive_scores[t * sources.size() + s] = walker.Score(sources[s]);
      }
    }
  }) / static_cast<double>(targets.size());

  // Sparse + batched: the B-BJ/B-IDJ configuration. The batch (and its
  // thread pool) is a fixture, mirroring how joins reuse one evaluator
  // across Run() calls — thread spawn must not be charged per repeat.
  std::vector<double> batched_scores;
  BackwardWalkerBatch batch(g);
  r.batched_sec_per_target = TimeIt(repeats, [&] {
    batched_scores = batch.Run(p, d, targets, sources);
  }) / static_cast<double>(targets.size());

  for (std::size_t i = 0; i < dense_scores.size(); ++i) {
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(adaptive_scores[i] - dense_scores[i]));
    r.max_abs_diff = std::max(
        r.max_abs_diff, std::abs(batched_scores[i] - dense_scores[i]));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: physical layout to run the whole suite under
  // (none|degree|rcm). CI runs the smoke with reordering on AND off;
  // every agreement/parity gate below must hold in every layout
  // (results are bit-identical across layouts by DESIGN.md §7).
  ReorderKind reorder = ReorderKind::kNone;
  if (argc > 1) {
    auto parsed = ParseReorderKind(argv[1]);
    CheckOk(parsed.status(), "parse reorder kind");
    reorder = *parsed;
  }
  auto ds = MakeDblp();
  Graph reordered;
  if (reorder != ReorderKind::kNone) {
    reordered = Unwrap(ReorderGraph(ds.graph, reorder), "ReorderGraph");
  }
  const Graph& g = reorder == ReorderKind::kNone ? ds.graph : reordered;
  DhtParams p = DhtParams::Lambda(0.2);
  std::printf("[setup] n=%d m=%lld layout=%s\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()),
              ReorderKindName(reorder));

  // Spread targets across the id space; sources likewise.
  std::vector<ExtNodeId> targets, sources;
  for (std::size_t i = 0; i < kNumTargets; ++i) {
    targets.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 131 + 17) % static_cast<std::size_t>(g.num_nodes()))));
  }
  for (std::size_t i = 0; i < kNumSources; ++i) {
    sources.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 37 + 5) % static_cast<std::size_t>(g.num_nodes()))));
  }

  std::vector<JsonObject> rows;
  double headline_speedup = 0.0;
  double headline_diff = 0.0;
  std::printf("\nbackward d-step evaluation, per target (DBLP-like):\n");
  std::printf("%4s %14s %14s %14s %9s %9s %12s\n", "d", "dense(ms)",
              "adaptive(ms)", "batched(ms)", "adp x", "batch x", "max|diff|");
  for (int d : {2, 8, 16}) {
    const int repeats = d <= 8 ? 3 : 2;
    BackwardResult r =
        RunBackwardComparison(g, p, d, targets, sources, repeats);
    double adaptive_speedup = r.dense_sec_per_target /
                              std::max(r.adaptive_sec_per_target, 1e-12);
    double batched_speedup = r.dense_sec_per_target /
                             std::max(r.batched_sec_per_target, 1e-12);
    std::printf("%4d %14.3f %14.3f %14.3f %8.1fx %8.1fx %12.2e\n", d,
                r.dense_sec_per_target * 1e3, r.adaptive_sec_per_target * 1e3,
                r.batched_sec_per_target * 1e3, adaptive_speedup,
                batched_speedup, r.max_abs_diff);
    if (r.max_abs_diff > 1e-12) {
      std::fprintf(stderr,
                   "FAIL: engines disagree beyond 1e-12 at d=%d (%.3e)\n", d,
                   r.max_abs_diff);
      return 1;
    }
    if (d == 8) {  // the paper's default depth is the headline number
      headline_speedup = batched_speedup;
      headline_diff = r.max_abs_diff;
    }
    rows.push_back(JsonObject()
                       .Set("d", d)
                       .Set("dense_ms_per_target", r.dense_sec_per_target * 1e3)
                       .Set("adaptive_ms_per_target",
                            r.adaptive_sec_per_target * 1e3)
                       .Set("batched_ms_per_target",
                            r.batched_sec_per_target * 1e3)
                       .Set("adaptive_speedup", adaptive_speedup)
                       .Set("batched_speedup", batched_speedup)
                       .Set("max_abs_score_diff", r.max_abs_diff));
  }

  // Forward single-pair micro numbers (the F-BJ inner loop).
  std::printf("\nforward pair computation (d=8):\n");
  ExtNodeId u = ds.areas[0][0];
  ExtNodeId v = ds.areas[1][0];
  double fwd_dense = 0.0, fwd_adaptive = 0.0;
  {
    ForwardWalker dense(g, PropagationMode::kDense);
    ForwardWalker adaptive(g, PropagationMode::kAdaptive);
    fwd_dense = TimeIt(3, [&] { dense.Compute(p, 8, u, v); });
    fwd_adaptive = TimeIt(3, [&] { adaptive.Compute(p, 8, u, v); });
    if (std::abs(dense.Score() - adaptive.Score()) > 1e-12) {
      std::fprintf(stderr, "FAIL: forward engines disagree\n");
      return 1;
    }
  }
  std::printf("  dense %.3f ms, adaptive %.3f ms (%.1fx)\n", fwd_dense * 1e3,
              fwd_adaptive * 1e3, fwd_dense / std::max(fwd_adaptive, 1e-12));

  // Forward batch vs scalar pair loop (the F-BJ/F-IDJ inner sweep):
  // same per-pair walks, one out-CSR pass per kLaneWidth lanes.
  constexpr std::size_t kFwdSources = 24;
  constexpr std::size_t kFwdTargets = 12;
  std::vector<ExtNodeId> fwd_sources, fwd_targets;
  for (std::size_t i = 0; i < kFwdSources; ++i) {
    fwd_sources.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 211 + 3) % static_cast<std::size_t>(g.num_nodes()))));
  }
  for (std::size_t i = 0; i < kFwdTargets; ++i) {
    fwd_targets.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 97 + 41) % static_cast<std::size_t>(g.num_nodes()))));
  }
  const double num_pairs =
      static_cast<double>(kFwdSources) * static_cast<double>(kFwdTargets);
  std::vector<double> fwd_scalar_scores(fwd_sources.size() *
                                        fwd_targets.size());
  double fwd_scalar_sec = TimeIt(2, [&] {
    ForwardWalker walker(g);
    for (std::size_t s = 0; s < fwd_sources.size(); ++s) {
      for (std::size_t t = 0; t < fwd_targets.size(); ++t) {
        if (fwd_sources[s] == fwd_targets[t]) continue;
        fwd_scalar_scores[s * fwd_targets.size() + t] =
            walker.Compute(p, 8, fwd_sources[s], fwd_targets[t]);
      }
    }
  }) / num_pairs;
  std::vector<double> fwd_batch_scores;
  ForwardWalkerBatch fwd_batch(g);
  double fwd_batch_sec = TimeIt(2, [&] {
    fwd_batch_scores = fwd_batch.Run(p, 8, fwd_sources, fwd_targets);
  }) / num_pairs;
  double fwd_batch_diff = 0.0;
  for (std::size_t s = 0; s < fwd_sources.size(); ++s) {
    for (std::size_t t = 0; t < fwd_targets.size(); ++t) {
      if (fwd_sources[s] == fwd_targets[t]) continue;
      fwd_batch_diff = std::max(
          fwd_batch_diff,
          std::abs(fwd_batch_scores[s * fwd_targets.size() + t] -
                   fwd_scalar_scores[s * fwd_targets.size() + t]));
    }
  }
  double fwd_batch_speedup = fwd_scalar_sec / std::max(fwd_batch_sec, 1e-12);
  std::printf("\nforward batch, %zux%zu pairs (d=8): scalar %.3f ms/pair, "
              "batched %.3f ms/pair (%.1fx), max|diff| %.2e\n",
              kFwdSources, kFwdTargets, fwd_scalar_sec * 1e3,
              fwd_batch_sec * 1e3, fwd_batch_speedup, fwd_batch_diff);
  if (fwd_batch_diff > 1e-12) {
    std::fprintf(stderr,
                 "FAIL: forward batch/scalar disagree beyond 1e-12 (%.3e)\n",
                 fwd_batch_diff);
    return 1;
  }

  // Resumable deepening acceptance: B-IDJ and F-IDJ must produce
  // byte-identical top-k with strictly fewer walk_steps than the
  // restart schedule, on this DBLP-like graph.
  NodeSet rp = ds.areas[0].TopByDegree(g, 100);
  NodeSet rq = ds.areas[1].TopByDegree(g, 100);
  BIdjJoin bidj_resume(BIdjJoin::Options{.resume = true});
  BIdjJoin bidj_restart(BIdjJoin::Options{.resume = false});
  auto bidj_a = bidj_resume.Run(g, p, 8, rp, rq, 50);
  auto bidj_b = bidj_restart.Run(g, p, 8, rp, rq, 50);
  CheckOk(bidj_a.status(), "B-IDJ resume");
  CheckOk(bidj_b.status(), "B-IDJ restart");
  bool bidj_identical = *bidj_a == *bidj_b;
  int64_t bidj_resume_steps = bidj_resume.stats().walk_steps;
  int64_t bidj_restart_steps = bidj_restart.stats().walk_steps;
  std::printf("\nB-IDJ-Y deepening (|P|=|Q|=100, k=50, d=8): resume %lld "
              "steps vs restart %lld steps (%.2fx fewer), byte-identical=%s\n",
              static_cast<long long>(bidj_resume_steps),
              static_cast<long long>(bidj_restart_steps),
              static_cast<double>(bidj_restart_steps) /
                  std::max<int64_t>(bidj_resume_steps, 1),
              bidj_identical ? "yes" : "NO");
  if (!bidj_identical || bidj_resume_steps >= bidj_restart_steps) {
    std::fprintf(stderr, "FAIL: B-IDJ resume parity/steps check\n");
    return 1;
  }

  NodeSet fp = ds.areas[0].TopByDegree(g, 24);
  NodeSet fq = ds.areas[1].TopByDegree(g, 24);
  FIdjJoin fidj_resume(FIdjJoin::Options{.resume = true});
  FIdjJoin fidj_restart(FIdjJoin::Options{.resume = false});
  auto fidj_a = fidj_resume.Run(g, p, 8, fp, fq, 20);
  auto fidj_b = fidj_restart.Run(g, p, 8, fp, fq, 20);
  CheckOk(fidj_a.status(), "F-IDJ resume");
  CheckOk(fidj_b.status(), "F-IDJ restart");
  bool fidj_identical = *fidj_a == *fidj_b;
  int64_t fidj_resume_steps = fidj_resume.stats().walk_steps;
  int64_t fidj_restart_steps = fidj_restart.stats().walk_steps;
  std::printf("F-IDJ deepening (|P|=|Q|=24, k=20, d=8): resume %lld steps "
              "vs restart %lld steps (%.2fx fewer), byte-identical=%s\n",
              static_cast<long long>(fidj_resume_steps),
              static_cast<long long>(fidj_restart_steps),
              static_cast<double>(fidj_restart_steps) /
                  std::max<int64_t>(fidj_resume_steps, 1),
              fidj_identical ? "yes" : "NO");
  if (!fidj_identical || fidj_resume_steps >= fidj_restart_steps) {
    std::fprintf(stderr, "FAIL: F-IDJ resume parity/steps check\n");
    return 1;
  }

  // Y-bound sweep regression canary (B-IDJ-Y and the incremental join
  // still pay this dense d-step sweep up front).
  NodeSet yp = ds.areas[0].TopByDegree(g, 100);
  NodeSet yq = ds.areas[1].TopByDegree(g, 100);
  double ybound_sec = TimeIt(3, [&] {
    YBoundTable table(g, p, 8, yp, yq);
    if (table.Bound(0, 0) < 0.0) std::abort();  // keep the table alive
  });
  std::printf("\nY-bound table construction (d=8, |P|=|Q|=100): %.3f ms\n",
              ybound_sec * 1e3);

  JsonObject doc;
  doc.Set("bench", std::string("micro_walkers"))
      .Set("dataset", std::string("dblp_like"))
      .Set("layout", std::string(ReorderKindName(reorder)))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("num_targets", static_cast<int64_t>(targets.size()))
      .Set("num_sources", static_cast<int64_t>(sources.size()))
      .Set("lane_width", BackwardWalkerBatch::kLaneWidth)
      .SetRaw("backward", JsonArray(rows))
      .Set("forward_pair_dense_ms", fwd_dense * 1e3)
      .Set("forward_pair_adaptive_ms", fwd_adaptive * 1e3)
      .Set("forward_scalar_ms_per_pair", fwd_scalar_sec * 1e3)
      .Set("forward_batched_ms_per_pair", fwd_batch_sec * 1e3)
      .Set("forward_batched_speedup", fwd_batch_speedup)
      .Set("forward_batched_max_abs_diff", fwd_batch_diff)
      .Set("bidj_resume_walk_steps", bidj_resume_steps)
      .Set("bidj_restart_walk_steps", bidj_restart_steps)
      .Set("fidj_resume_walk_steps", fidj_resume_steps)
      .Set("fidj_restart_walk_steps", fidj_restart_steps)
      .Set("ybound_table_ms", ybound_sec * 1e3)
      .Set("headline_sparse_batched_speedup_d8", headline_speedup)
      .Set("headline_max_abs_score_diff_d8", headline_diff);
  const std::string json_name =
      reorder == ReorderKind::kNone
          ? "BENCH_walkers.json"
          : std::string("BENCH_walkers_") + ReorderKindName(reorder) +
                ".json";
  WriteJsonFile(json_name, doc.ToString());
  std::printf("\nwrote %s (headline d=8 sparse+batched speedup: %.1fx)\n",
              json_name.c_str(), headline_speedup);
  return 0;
}
