/// \file bench/bench_micro_walkers.cc
/// \brief google-benchmark micro timings of the DHT engine primitives:
/// one forward pair computation, one backward walk, and the Y-bound
/// sweep. These are regression canaries for the inner loops every join
/// algorithm sits on.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dht/backward.h"
#include "dht/bounds.h"
#include "dht/forward.h"

namespace dhtjoin::bench {
namespace {

const datasets::YeastLikeDataset& Dataset() {
  static const datasets::YeastLikeDataset* ds = [] {
    auto r = datasets::GenerateYeastLike(
        datasets::YeastLikeConfig{.num_nodes = 1200, .num_edges = 3600});
    return new datasets::YeastLikeDataset(std::move(r).value());
  }();
  return *ds;
}

void BM_ForwardPair(benchmark::State& state) {
  const auto& ds = Dataset();
  ForwardWalker walker(ds.graph);
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = static_cast<int>(state.range(0));
  NodeId u = ds.partitions[0][0];
  NodeId v = ds.partitions[1][0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.Compute(p, d, u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardPair)->Arg(2)->Arg(8)->Arg(16);

void BM_BackwardWalk(benchmark::State& state) {
  const auto& ds = Dataset();
  BackwardWalker walker(ds.graph);
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = static_cast<int>(state.range(0));
  NodeId q = ds.partitions[1][0];
  for (auto _ : state) {
    walker.Reset(p, q);
    walker.Advance(d);
    benchmark::DoNotOptimize(walker.Score(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.num_nodes()));
}
BENCHMARK(BM_BackwardWalk)->Arg(2)->Arg(8)->Arg(16);

void BM_YBoundTable(benchmark::State& state) {
  const auto& ds = Dataset();
  DhtParams p = DhtParams::Lambda(0.2);
  const NodeSet& P = ds.partitions[0];
  const NodeSet& Q = ds.partitions[1];
  for (auto _ : state) {
    YBoundTable table(ds.graph, p, 8, P, Q);
    benchmark::DoNotOptimize(table.Bound(0, 0));
  }
}
BENCHMARK(BM_YBoundTable);

}  // namespace
}  // namespace dhtjoin::bench
