/// \file bench/bench_fig10_two_way_dblp.cc
/// \brief Reproduces paper Figure 10: 2-way joins on DBLP.
///   (a) backward algorithms vs lambda — B-IDJ-Y's advantage grows with
///       lambda while B-IDJ-X collapses to B-BJ;
///   (b) fraction of Q pruned per deepening iteration at lambda = 0.7 —
///       the paper reports B-IDJ-Y pruning > 96.5% after iteration 1 and
///       > 98.5% after iteration 2, with B-IDJ-X pruning nothing early.

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr std::size_t kSetSize = 150;

double RunJoin(TwoWayJoin& algo, const Graph& g, const DhtParams& p, int d,
               const NodeSet& P, const NodeSet& Q, std::size_t k,
               int repeats) {
  return TimeIt(repeats, [&] {
    auto result = algo.Run(g, p, d, P, Q, k);
    CheckOk(result.status(), algo.Name().c_str());
  });
}

}  // namespace

int main() {
  auto ds = MakeDblp();
  PaperDefaults def;
  NodeSet P = Unwrap(ds.Area("DB"), "area").TopByDegree(ds.graph, kSetSize);
  NodeSet Q = Unwrap(ds.Area("AI"), "area").TopByDegree(ds.graph, kSetSize);
  std::printf("node sets: |P| = %zu (DB), |Q| = %zu (AI)\n\n", P.size(),
              Q.size());

  // --------------------------------------------------- (a) vs lambda
  double x_slowdown = 0.0, y_slowdown = 0.0;
  bool y_beats_x = true;
  {
    std::printf("=== Figure 10(a): backward algorithms vs lambda ===\n");
    TablePrinter table("DBLP 2-way join: time vs lambda (epsilon=1e-6)",
                       {"lambda", "d", "B-BJ", "B-IDJ-X", "B-IDJ-Y"});
    double x_first = 0.0, x_last = 0.0, y_first = 0.0, y_last = 0.0;
    for (double lambda : {0.2, 0.4, 0.6, 0.8}) {
      DhtParams p = DhtParams::Lambda(lambda);
      int d = p.StepsForEpsilon(1e-6);
      BBjJoin bbj;
      BIdjJoin bx(BIdjJoin::Options{UpperBoundKind::kX});
      BIdjJoin by(BIdjJoin::Options{UpperBoundKind::kY});
      double tb = RunJoin(bbj, ds.graph, p, d, P, Q, def.k, 1);
      double tx = RunJoin(bx, ds.graph, p, d, P, Q, def.k, 1);
      double ty = RunJoin(by, ds.graph, p, d, P, Q, def.k, 1);
      if (lambda == 0.2) {
        x_first = tx;
        y_first = ty;
      }
      if (lambda == 0.8) {
        x_last = tx;
        y_last = ty;
      }
      if (ty > tx) y_beats_x = false;
      table.AddRow({TablePrinter::Num(lambda, 1), std::to_string(d),
                    TablePrinter::Secs(tb), TablePrinter::Secs(tx),
                    TablePrinter::Secs(ty)});
    }
    std::printf("%s\n", table.Render().c_str());
    x_slowdown = x_last / std::max(x_first, 1e-9);
    y_slowdown = y_last / std::max(y_first, 1e-9);
    std::printf("slowdown 0.2 -> 0.8: B-IDJ-X %.1fx, B-IDJ-Y %.1fx\n\n",
                x_slowdown, y_slowdown);
  }

  // -------------------------------- (b) pruning per iteration, l=0.7
  bool prune_pass = false;
  {
    std::printf("=== Figure 10(b): %% of Q pruned per iteration "
                "(lambda=0.7) ===\n");
    // Like the paper, this analysis joins the FULL DB and AI areas —
    // the bulk of a whole area sits far from the other area's authors,
    // which is exactly the mass a good bound prunes in iteration 1.
    // (Part (a) uses hub subsets to keep the B-BJ timing comparison
    // affordable; hubs are the hardest nodes to prune.)
    NodeSet full_p = Unwrap(ds.Area("DB"), "area");
    NodeSet full_q = Unwrap(ds.Area("AI"), "area");
    std::printf("full areas: |P| = %zu (DB), |Q| = %zu (AI)\n",
                full_p.size(), full_q.size());
    DhtParams p = DhtParams::Lambda(0.7);
    int d = p.StepsForEpsilon(1e-6);
    BIdjJoin bx(BIdjJoin::Options{UpperBoundKind::kX});
    BIdjJoin by(BIdjJoin::Options{UpperBoundKind::kY});
    CheckOk(by.Run(ds.graph, p, d, full_p, full_q, def.k).status(),
            "B-IDJ-Y");
    CheckOk(bx.Run(ds.graph, p, d, full_p, full_q, def.k).status(),
            "B-IDJ-X");
    const auto& fx = bx.stats().pruned_fraction_per_iteration;
    const auto& fy = by.stats().pruned_fraction_per_iteration;
    TablePrinter table("Cumulative % of Q pruned after each iteration",
                       {"iteration", "B-IDJ-X", "B-IDJ-Y"});
    std::size_t iters = std::min<std::size_t>(4, fy.size());
    for (std::size_t i = 0; i < iters; ++i) {
      table.AddRow({std::to_string(i + 1),
                    TablePrinter::Num(100.0 * fx[i], 1) + "%",
                    TablePrinter::Num(100.0 * fy[i], 1) + "%"});
    }
    std::printf("%s\n", table.Render().c_str());
    // Paper: Y prunes the overwhelming majority immediately (>96% on
    // the 188k-node DBLP; dilution is weaker at our 15k scale); X
    // prunes ~nothing in the first iterations.
    prune_pass = !fy.empty() && !fx.empty() && fy[0] > 0.5 &&
                 fx[0] < 0.05 && fy[0] > fx[0] + 0.25;
    std::printf("shape check [B-IDJ-Y prunes a majority of Q in "
                "iteration 1, X prunes ~nothing]: %s\n",
                prune_pass ? "PASS" : "FAIL");
  }

  std::printf("shape check [B-IDJ-Y <= B-IDJ-X at every lambda]: %s\n",
              y_beats_x ? "PASS" : "FAIL");
  return (prune_pass && y_beats_x) ? 0 : 1;
}
