/// \file bench/bench_table4_prediction_auc.cc
/// \brief Reproduces paper Table IV: AUC of link prediction (2-way join)
/// and 3-clique prediction (3-way join) on the three datasets.
///
/// Paper shape: every AUC exceeds 0.9, and 3-clique prediction scores at
/// least as well as link prediction on each dataset. Test graphs T are
/// built exactly as in Sec VII-B: DBLP = pre-2010 snapshot; Yeast /
/// YouTube = random removal of half the inter-set edges (one edge per
/// clique for the 3-clique task).

#include "bench_common.h"
#include "datasets/perturb.h"
#include "eval/clique_prediction.h"
#include "eval/link_prediction.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

struct Row {
  std::string dataset;
  double link_auc;
  double clique_auc;
};

Row EvalYeast(const PaperDefaults& def) {
  auto ds = MakeYeast();
  const NodeSet P = Unwrap(ds.Partition("3-U"), "partition");
  const NodeSet Q = Unwrap(ds.Partition("8-D"), "partition");
  const NodeSet R = Unwrap(ds.Partition("5-F"), "partition");

  auto link_t = Unwrap(
      datasets::RemoveInterSetEdges(ds.graph, P, Q, 0.5, 404), "perturb");
  auto link = Unwrap(eval::EvaluateLinkPrediction(ds.graph, link_t.graph, P,
                                                  Q, def.dht, def.d),
                     "link prediction");

  auto clique_t = Unwrap(
      datasets::RemoveCliqueEdges(ds.graph, P, Q, R, 405), "perturb");
  auto clique = Unwrap(
      eval::EvaluateCliquePrediction(ds.graph, clique_t.graph, P, Q, R,
                                     def.dht, def.d,
                                     {.k = 2000, .m = 200}),
      "clique prediction");
  return Row{"Yeast", link.auc, clique.auc};
}

Row EvalDblp(const PaperDefaults& def) {
  auto ds = MakeDblp();
  NodeSet db = Unwrap(ds.Area("DB"), "area").TopByDegree(ds.graph, 300);
  NodeSet ai = Unwrap(ds.Area("AI"), "area").TopByDegree(ds.graph, 300);
  NodeSet sys = Unwrap(ds.Area("SYS"), "area").TopByDegree(ds.graph, 300);

  // Link prediction: temporal snapshot (paper: "edges before 1 Jan 2010").
  auto snapshot = Unwrap(ds.SnapshotBefore(2010), "snapshot");
  auto link = Unwrap(eval::EvaluateLinkPrediction(ds.graph, snapshot, db,
                                                  ai, def.dht, def.d),
                     "link prediction");

  // 3-clique prediction. The paper also uses the 2010 snapshot here; our
  // synthetic accretion produces too few NEW cross-area cliques for a
  // stable AUC, so we fall back to the Yeast/YouTube protocol (remove
  // one edge per existing clique) — see EXPERIMENTS.md.
  auto clique_t = Unwrap(
      datasets::RemoveCliqueEdges(ds.graph, db, ai, sys, 408), "perturb");
  auto clique = Unwrap(
      eval::EvaluateCliquePrediction(ds.graph, clique_t.graph, db, ai, sys,
                                     def.dht, def.d, {.k = 2000, .m = 200}),
      "clique prediction");
  return Row{"DBLP", link.auc, clique.auc};
}

Row EvalYouTube(const PaperDefaults& def) {
  auto ds = MakeYouTube();
  NodeSet g1 = Unwrap(ds.Group(1), "group");
  NodeSet g5 = Unwrap(ds.Group(5), "group");
  // Clique prediction uses the three LARGEST groups — our synthetic
  // group ids are ordered by size, and the paper's choice of ids
  // (1, 5, 88) was dataset-specific.
  NodeSet g2 = Unwrap(ds.Group(2), "group");
  NodeSet g3 = Unwrap(ds.Group(3), "group");

  auto link_t = Unwrap(
      datasets::RemoveInterSetEdges(ds.graph, g1, g5, 0.5, 406), "perturb");
  auto link = Unwrap(eval::EvaluateLinkPrediction(ds.graph, link_t.graph,
                                                  g1, g5, def.dht, def.d),
                     "link prediction");

  auto clique_t = Unwrap(
      datasets::RemoveCliqueEdges(ds.graph, g1, g2, g3, 407), "perturb");
  auto clique = Unwrap(
      eval::EvaluateCliquePrediction(ds.graph, clique_t.graph, g1, g2, g3,
                                     def.dht, def.d,
                                     {.k = 2000, .m = 200}),
      "clique prediction");
  return Row{"YouTube", link.auc, clique.auc};
}

}  // namespace

int main() {
  std::printf("=== Table IV: AUC for link- and 3-clique-prediction ===\n");
  std::printf("paper: Yeast 0.9453/0.9536, DBLP 0.9222/0.9998, YouTube\n");
  std::printf("0.9544/0.9609 (real datasets; ours are synthetic stand-ins\n");
  std::printf("so the claim is AUC >> 0.5 with clique >= link shape).\n\n");

  PaperDefaults def;
  std::vector<Row> rows;
  rows.push_back(EvalYeast(def));
  rows.push_back(EvalDblp(def));
  rows.push_back(EvalYouTube(def));

  TablePrinter table("AUC scores (synthetic stand-in datasets)",
                     {"dataset", "link-prediction", "3-clique-prediction"});
  bool all_informative = true;
  for (const Row& r : rows) {
    table.AddRow({r.dataset, TablePrinter::Num(r.link_auc, 4),
                  TablePrinter::Num(r.clique_auc, 4)});
    if (r.link_auc < 0.7 || r.clique_auc < 0.6) all_informative = false;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "shape check [every AUC well above chance (link>0.7, clique>0.6)]: "
      "%s\n",
      all_informative ? "PASS" : "FAIL");
  return all_informative ? 0 : 1;
}
