/// \file bench/bench_recovery.cc
/// \brief Durability benchmark for the snapshot/restore subsystem
/// (DESIGN.md §13): the crash-safety matrix in-process, real workers
/// SIGKILLed MID-CHECKPOINT at every writer phase under supervised
/// respawn, and the warm-vs-cold payoff on a Zipfian replay.
///
/// Acceptance gates (exit nonzero on violation):
///  * ZERO CORRUPT LOADS (fatal): across hook-simulated aborts at
///    every writer phase, loader fuzz (truncations + bit flips), and
///    real SIGKILLs landed inside the checkpoint writer, every read
///    of the snapshot path yields the last good snapshot, a typed
///    error, or kNotFound — never a loadable lie;
///  * EVERY KILL PHASE SURVIVED: one worker slot per CheckpointPhase,
///    each chaos-seeded to die at that phase, each respawned by the
///    coordinator and the cluster kept answering byte-identically;
///  * WARM BEATS COLD: a warm-restored service serves strictly more
///    warm targets than a cold one on the same Zipfian replay, with
///    byte-identical answers.
///
/// `--smoke` (CI, laptops) shrinks the graph and stream; the full run
/// writes the committed dev-box baseline
/// (bench/baselines/BENCH_recovery.json).

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/chaos.h"
#include "cluster/coordinator.h"
#include "cluster/supervisor.h"
#include "cluster/worker.h"
#include "persist/snapshot.h"
#include "serve/session.h"
#include "serve/workload.h"

using namespace dhtjoin;           // NOLINT
using namespace dhtjoin::bench;    // NOLINT
using namespace dhtjoin::cluster;  // NOLINT

namespace {

bool BytesIdentical(const std::vector<ScoredPair>& got,
                    const std::vector<ScoredPair>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].p != want[i].p || got[i].q != want[i].q ||
        std::bit_cast<uint64_t>(got[i].score) !=
            std::bit_cast<uint64_t>(want[i].score)) {
      return false;
    }
  }
  return true;
}

/// A snapshot path read must be one of exactly three things: the last
/// complete snapshot, a typed corruption error, or not-found. An OK
/// load of garbage — or a crash — is the corruption this bench hunts.
bool PathStateIsSane(const std::string& path) {
  Result<persist::SnapshotFile> r = persist::ReadSnapshotFile(path);
  if (r.ok()) return true;
  return r.status().code() == StatusCode::kNotFound ||
         r.status().code() == StatusCode::kInvalidArgument;
}

/// Finds a chaos seed whose ordinal-0 checkpoint fault kills at
/// `phase` — each respawned worker restarts its checkpoint ordinal at
/// 0, so the slot's seed pins WHERE in the writer every kill lands.
uint64_t SeedForKillPhase(persist::CheckpointPhase phase) {
  for (uint64_t seed = 1;; ++seed) {
    ChaosOptions opts;
    opts.seed = seed;
    opts.p_kill_at_checkpoint = 1.0;
    CheckpointFault fault = DrawCheckpointFault(opts, 0);
    if (fault.armed && fault.kill_phase == phase) return seed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  auto ds = MakeDblp(smoke ? 3000 : 8000);
  const Graph& g = ds.graph;
  PaperDefaults defaults;
  const DhtParams& p = defaults.dht;
  const int d = defaults.d;

  serve::WorkloadOptions wopts;
  wopts.num_requests = smoke ? 48 : 160;
  wopts.num_templates = smoke ? 8 : 12;
  wopts.zipf_s = 1.0;
  wopts.set_size = smoke ? 40 : 80;
  wopts.k = defaults.k;
  wopts.seed = 47;
  auto workload =
      Unwrap(serve::GenerateZipfianTwoWayWorkload(g, ds.areas, wopts),
             "GenerateZipfianTwoWayWorkload");
  const std::vector<serve::TwoWayRequest>& requests = workload.requests;

  const std::string snapdir =
      "/tmp/dhtjoin_recovery_" + std::to_string(::getpid());
  ::mkdir(snapdir.c_str(), 0755);

  std::printf("[setup] recovery stream: %zu requests over %zu templates "
              "(zipf %.1f, |P|=|Q|=%zu, k=%zu, d=%d)\n",
              requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k, d);

  // ---- Fork the supervisor agent BEFORE this process grows threads
  // (fork clones only the calling thread). One slot per writer phase,
  // each seeded so its first periodic checkpoint SIGKILLs the worker
  // exactly there.
  std::vector<WorkerSlot> slots;
  std::vector<std::string> slot_paths;
  for (int phase = 0; phase < persist::kNumCheckpointPhases; ++phase) {
    WorkerSlot slot;
    slot.options.checkpoint_path =
        snapdir + "/worker_" + std::to_string(phase) + ".snap";
    slot.options.checkpoint_every_ms = 15;
    slot.options.chaos.seed =
        SeedForKillPhase(static_cast<persist::CheckpointPhase>(phase));
    slot.options.chaos.p_kill_at_checkpoint = 1.0;
    slot_paths.push_back(slot.options.checkpoint_path);
    slots.push_back(std::move(slot));
    std::printf("[setup] slot %d kills its checkpoint %s (seed %llu)\n",
                phase,
                persist::CheckpointPhaseName(
                    static_cast<persist::CheckpointPhase>(phase)),
                static_cast<unsigned long long>(slots.back().options
                                                    .chaos.seed));
  }
  auto supervisor =
      Unwrap(WorkerSupervisor::Start(g, p, d, slots), "supervisor start");
  std::vector<WorkerEndpoint> endpoints;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto w = Unwrap(supervisor->Spawn(i), "spawn slot");
    endpoints.push_back(WorkerEndpoint{w.port});
  }

  // =========================================================== A
  // In-process crash-safety matrix: abort the writer at every phase,
  // then fuzz the surviving file. The snapshot path must stay sane at
  // every step.
  std::printf("\n[phase A] writer-abort matrix + loader fuzz\n");
  int64_t corrupt_loads = 0;
  int64_t abort_checks = 0;
  const std::string inproc = snapdir + "/inproc.snap";
  {
    serve::DhtJoinService::Options sopts;
    sopts.num_threads = 2;
    serve::DhtJoinService service(g, p, d, sopts);
    const int rounds = smoke ? 2 : 6;
    std::size_t next_req = 0;
    CheckOk(service.TwoWay(requests[0].P, requests[0].Q, requests[0].k)
                .status(),
            "phase A warmup query");
    CheckOk(service.SaveWarmState(inproc), "phase A initial snapshot");
    for (int round = 0; round < rounds; ++round) {
      for (int phase = 0; phase < persist::kNumCheckpointPhases; ++phase) {
        // Mutate the cache so the aborted snapshot would differ from
        // the last good one — otherwise the abort proves nothing.
        const auto& rq = requests[++next_req % requests.size()];
        CheckOk(service.TwoWay(rq.P, rq.Q, rq.k).status(), "phase A query");
        const auto kill_at = static_cast<persist::CheckpointPhase>(phase);
        Status st = service.SaveWarmState(
            inproc, [kill_at](persist::CheckpointPhase at) {
              return at != kill_at;
            });
        if (st.code() != StatusCode::kCancelled) {
          std::fprintf(stderr, "abort at %s returned %s\n",
                       persist::CheckpointPhaseName(kill_at),
                       st.ToString().c_str());
          ++corrupt_loads;
        }
        ++abort_checks;
        if (!PathStateIsSane(inproc)) ++corrupt_loads;
        serve::DhtJoinService fresh(g, p, d, sopts);
        if (!fresh.LoadWarmState(inproc).ok()) ++corrupt_loads;
      }
    }
    CheckOk(service.SaveWarmState(inproc), "phase A final snapshot");
  }
  int64_t fuzz_checks = 0;
  int64_t fuzz_accepted = 0;
  {
    auto bytes = Unwrap(persist::ReadFileBytes(inproc), "read inproc snap");
    const std::size_t n = bytes.size();
    const std::size_t stride = smoke ? (n / 257) + 1 : (n / 2048) + 1;
    for (std::size_t len = 0; len < n; len += stride) {
      ++fuzz_checks;
      if (persist::DecodeSnapshot(
              std::span<const uint8_t>(bytes.data(), len))
              .ok()) {
        ++fuzz_accepted;
      }
    }
    for (std::size_t i = 0; i < n; i += stride) {
      std::vector<uint8_t> flipped = bytes;
      flipped[i] = static_cast<uint8_t>(flipped[i] ^ 0x10u);
      ++fuzz_checks;
      if (persist::DecodeSnapshot(flipped).ok()) ++fuzz_accepted;
    }
    std::printf("  %lld abort checks, %lld fuzz probes (%zu-byte file), "
                "%lld corrupt loads, %lld fuzz acceptances\n",
                static_cast<long long>(abort_checks),
                static_cast<long long>(fuzz_checks), n,
                static_cast<long long>(corrupt_loads),
                static_cast<long long>(fuzz_accepted));
  }

  // =========================================================== B
  // Real SIGKILLs inside the checkpoint writer, one slot per phase,
  // under coordinator-driven respawn. The bench concurrently polls
  // every snapshot path: rename(2) atomicity means NO poll may ever
  // observe a half-written file.
  std::printf("\n[phase B] SIGKILL-mid-checkpoint under supervised "
              "respawn\n");
  serve::DhtJoinService::Options ref_opts;
  ref_opts.num_threads = 2;
  serve::DhtJoinService reference(g, p, d, ref_opts);

  CoordinatorOptions copts;
  copts.hedge.enabled = false;
  copts.retry.backoff.initial_micros = 500;
  copts.retry.backoff.max_micros = 5000;
  copts.local_service.num_threads = 2;
  copts.health.heartbeat_period_micros = 20000;
  copts.health.ping_timeout_micros = 100000;
  copts.supervisor = supervisor.get();
  copts.respawn.enabled = true;
  copts.respawn.max_respawns = smoke ? 3 : 6;
  copts.respawn.backoff.initial_micros = 20000;
  copts.respawn.backoff.max_micros = 200000;
  ClusterCoordinator coord(g, p, d, endpoints, copts);
  coord.StartHeartbeats();

  int64_t poll_rounds = 0;
  int64_t corrupt_polls = 0;
  int64_t chaos_completed = 0;
  int64_t chaos_mismatches = 0;
  int64_t chaos_typed_errors = 0;
  {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(smoke ? 2500 : 8000);
    std::size_t req_i = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      for (const std::string& path : slot_paths) {
        if (!PathStateIsSane(path)) ++corrupt_polls;
      }
      ++poll_rounds;
      if (poll_rounds % 4 == 0) {
        const auto& rq = requests[req_i++ % requests.size()];
        Result<std::vector<ScoredPair>> r = coord.TwoWay(rq.P, rq.Q, rq.k);
        if (r.ok()) {
          auto want = Unwrap(reference.TwoWay(rq.P, rq.Q, rq.k),
                             "phase B reference");
          if (BytesIdentical(*r, want)) {
            ++chaos_completed;
          } else {
            ++chaos_mismatches;
          }
        } else {
          ++chaos_typed_errors;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  coord.StopHeartbeats();
  int64_t respawns_total = 0;
  int slots_respawned = 0;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const int64_t n = coord.WorkerRespawns(i);
    respawns_total += n;
    if (n > 0) ++slots_respawned;
    std::printf("  slot %zu (%s): %lld respawns\n", i,
                persist::CheckpointPhaseName(
                    static_cast<persist::CheckpointPhase>(i)),
                static_cast<long long>(n));
  }
  // Final sweep after the dust settles.
  for (const std::string& path : slot_paths) {
    if (!PathStateIsSane(path)) ++corrupt_polls;
  }
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    (void)supervisor->Kill(i);
  }
  std::printf("  %lld poll rounds, %lld corrupt polls; queries: %lld "
              "byte-identical, %lld mismatched, %lld typed errors\n",
              static_cast<long long>(poll_rounds),
              static_cast<long long>(corrupt_polls),
              static_cast<long long>(chaos_completed),
              static_cast<long long>(chaos_mismatches),
              static_cast<long long>(chaos_typed_errors));

  // =========================================================== C
  // Warm-vs-cold payoff: replay the same Zipfian stream on a cold
  // service and on a warm-restored one; the restored cache must serve
  // strictly more warm targets, with byte-identical answers.
  std::printf("\n[phase C] warm-vs-cold Zipfian replay\n");
  const std::string warm_snap = snapdir + "/warmstate.snap";
  serve::DhtJoinService::Options sopts;
  sopts.num_threads = 2;
  int64_t restored_entries = 0;
  {
    serve::DhtJoinService source(g, p, d, sopts);
    for (const auto& rq : requests) {
      CheckOk(source.TwoWay(rq.P, rq.Q, rq.k).status(), "phase C source");
    }
    CheckOk(source.SaveWarmState(warm_snap), "phase C snapshot");
  }
  int64_t cold_warm_targets = 0;
  int64_t warm_warm_targets = 0;
  int64_t replay_mismatches = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  {
    serve::DhtJoinService cold(g, p, d, sopts);
    serve::DhtJoinService warmed(g, p, d, sopts);
    restored_entries =
        Unwrap(warmed.LoadWarmState(warm_snap), "phase C restore");
    for (const auto& rq : requests) {
      serve::QueryStats cs;
      const auto c0 = std::chrono::steady_clock::now();
      auto cold_r = Unwrap(cold.TwoWay(rq.P, rq.Q, rq.k, &cs),
                           "phase C cold replay");
      cold_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - c0)
                          .count();
      cold_warm_targets += cs.warm_targets;
      serve::QueryStats ws;
      const auto w0 = std::chrono::steady_clock::now();
      auto warm_r = Unwrap(warmed.TwoWay(rq.P, rq.Q, rq.k, &ws),
                           "phase C warm replay");
      warm_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - w0)
                          .count();
      warm_warm_targets += ws.warm_targets;
      if (!BytesIdentical(warm_r, cold_r)) ++replay_mismatches;
    }
  }
  std::printf("  restored %lld entries; warm targets %lld (restored) vs "
              "%lld (cold); replay %.1f ms warm vs %.1f ms cold\n",
              static_cast<long long>(restored_entries),
              static_cast<long long>(warm_warm_targets),
              static_cast<long long>(cold_warm_targets),
              1e3 * warm_seconds, 1e3 * cold_seconds);

  // ======================================================= verdict
  std::printf("\n[gates]\n");
  bool ok = true;
  auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    ok = ok && pass;
  };
  gate(corrupt_loads == 0 && fuzz_accepted == 0 && corrupt_polls == 0,
       "ZERO corrupt loads: every snapshot read under aborts, fuzz, and "
       "live SIGKILLs was last-good, typed, or not-found");
  gate(slots_respawned == persist::kNumCheckpointPhases,
       "a worker killed at EVERY checkpoint phase was respawned");
  gate(chaos_mismatches == 0 && chaos_completed > 0,
       "queries during the kill storm stayed byte-identical to the "
       "single-process reference");
  gate(restored_entries > 0 && replay_mismatches == 0,
       "warm restore loaded entries and replayed byte-identically");
  gate(warm_warm_targets > cold_warm_targets,
       "warm-restored service beat the cold one on Zipfian replay");

  JsonObject doc;
  doc.Set("bench", std::string("recovery"))
      .Set("mode", std::string(smoke ? "smoke" : "full"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("abort_checks", abort_checks)
      .Set("fuzz_checks", fuzz_checks)
      .Set("fuzz_accepted", fuzz_accepted)
      .Set("corrupt_loads", corrupt_loads)
      .Set("poll_rounds", poll_rounds)
      .Set("corrupt_polls", corrupt_polls)
      .Set("respawns_total", respawns_total)
      .Set("kill_phases_respawned", static_cast<int64_t>(slots_respawned))
      .Set("chaos_completed", chaos_completed)
      .Set("chaos_mismatches", chaos_mismatches)
      .Set("chaos_typed_errors", chaos_typed_errors)
      .Set("restored_entries", restored_entries)
      .Set("warm_targets_restored", warm_warm_targets)
      .Set("warm_targets_cold", cold_warm_targets)
      .Set("replay_mismatches", replay_mismatches)
      .Set("warm_replay_ms", 1e3 * warm_seconds)
      .Set("cold_replay_ms", 1e3 * cold_seconds)
      .Set("zero_corrupt_loads",
           static_cast<int64_t>(corrupt_loads == 0 && fuzz_accepted == 0 &&
                                corrupt_polls == 0));
  WriteJsonFile("BENCH_recovery.json", doc.ToString());
  std::printf("\nwrote BENCH_recovery.json\n");

  if (!ok) {
    std::fprintf(stderr, "\nRECOVERY GATES FAILED\n");
    return 1;
  }
  std::printf("all recovery gates passed\n");
  return 0;
}
