/// \file bench/bench_micro_join2.cc
/// \brief google-benchmark micro timings of the 2-way join algorithms
/// and the incremental enumerator's steady-state Next().

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "join2/b_bj.h"
#include "join2/b_idj.h"
#include "join2/incremental.h"

namespace dhtjoin::bench {
namespace {

struct Fixture {
  datasets::YeastLikeDataset ds;
  NodeSet P, Q;
};

const Fixture& GetFixture() {
  static const Fixture* fx = [] {
    auto r = datasets::GenerateYeastLike(
        datasets::YeastLikeConfig{.num_nodes = 1200, .num_edges = 3600});
    auto* out = new Fixture{std::move(r).value(), {}, {}};
    out->P = out->ds.partitions[0].TopByDegree(out->ds.graph, 80);
    out->Q = out->ds.partitions[1].TopByDegree(out->ds.graph, 80);
    return out;
  }();
  return *fx;
}

void BM_BBj(benchmark::State& state) {
  const auto& fx = GetFixture();
  DhtParams p = DhtParams::Lambda(0.2);
  BBjJoin join;
  for (auto _ : state) {
    auto r = join.Run(fx.ds.graph, p, 8, fx.P, fx.Q,
                      static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BBj)->Arg(10)->Arg(50);

void BM_BIdjX(benchmark::State& state) {
  const auto& fx = GetFixture();
  DhtParams p = DhtParams::Lambda(0.2);
  BIdjJoin join(BIdjJoin::Options{UpperBoundKind::kX});
  for (auto _ : state) {
    auto r = join.Run(fx.ds.graph, p, 8, fx.P, fx.Q,
                      static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BIdjX)->Arg(10)->Arg(50);

void BM_BIdjY(benchmark::State& state) {
  const auto& fx = GetFixture();
  DhtParams p = DhtParams::Lambda(0.2);
  BIdjJoin join(BIdjJoin::Options{UpperBoundKind::kY});
  for (auto _ : state) {
    auto r = join.Run(fx.ds.graph, p, 8, fx.P, fx.Q,
                      static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BIdjY)->Arg(10)->Arg(50);

void BM_IncrementalNext(benchmark::State& state) {
  // Steady-state cost of one more pair after a top-50 run; this is the
  // operation PJ-i hammers (getNextNodePair).
  const auto& fx = GetFixture();
  DhtParams p = DhtParams::Lambda(0.2);
  auto join =
      IncrementalTwoWayJoin::Create(fx.ds.graph, p, 8, fx.P, fx.Q, 50);
  for (int i = 0; i < 50; ++i) (*join)->Next();
  for (auto _ : state) {
    auto next = (*join)->Next();
    if (!next.has_value()) {
      state.PauseTiming();
      join = IncrementalTwoWayJoin::Create(fx.ds.graph, p, 8, fx.P, fx.Q,
                                           50);
      for (int i = 0; i < 50; ++i) (*join)->Next();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_IncrementalNext);

}  // namespace
}  // namespace dhtjoin::bench
