/// \file bench/bench_fig7_nway_yeast.cc
/// \brief Reproduces paper Figure 7: n-way join efficiency on Yeast.
///   (a) running time vs n (chain query), NL / AP / PJ / PJ-i
///   (b) running time vs |E_Q| over 3 node sets, AP / PJ / PJ-i
///   (c) running time vs k, AP / PJ / PJ-i
///   (d) running time vs m, PJ / PJ-i
///
/// Paper shapes: NL is orders of magnitude slower and infeasible for
/// n >= 3; AP >> PJ > PJ-i; PJ degrades at small m while PJ-i stays
/// flat. Node sets here are the top-|set| members of distinct Yeast
/// partitions (the paper does not fix set sizes; 60 keeps AP affordable
/// on a laptop while preserving the ordering).

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr std::size_t kSetSize = 60;
constexpr double kNlBudgetSeconds = 30.0;

std::vector<NodeSet> BenchSets(const datasets::YeastLikeDataset& ds,
                               std::size_t count) {
  std::vector<NodeSet> sets;
  for (std::size_t i = 0; i < count; ++i) {
    sets.push_back(ds.partitions[i].TopByDegree(ds.graph, kSetSize));
  }
  return sets;
}

QueryGraph ChainQuery(const std::vector<NodeSet>& sets, std::size_t n) {
  QueryGraph q;
  std::vector<int> attr;
  for (std::size_t i = 0; i < n; ++i) attr.push_back(q.AddNodeSet(sets[i]));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    CheckOk(q.AddEdge(attr[i], attr[i + 1]), "chain edge");
  }
  return q;
}

/// 3 node sets with 2..6 directed edges (chain -> full bidirectional
/// triangle), mirroring the paper's |E_Q| sweep.
QueryGraph EdgeCountQuery(const std::vector<NodeSet>& sets, int num_edges) {
  QueryGraph q;
  int a = q.AddNodeSet(sets[0]);
  int b = q.AddNodeSet(sets[1]);
  int c = q.AddNodeSet(sets[2]);
  struct E {
    int from, to;
  };
  static const E order[6] = {{0, 1}, {1, 2}, {0, 2},
                             {1, 0}, {2, 1}, {2, 0}};
  int attrs[3] = {a, b, c};
  for (int e = 0; e < num_edges; ++e) {
    CheckOk(q.AddEdge(attrs[order[e].from], attrs[order[e].to]), "edge");
  }
  return q;
}

std::string RunTimed(NwayJoin& algo, const Graph& g,
                     const PaperDefaults& def, const QueryGraph& q,
                     std::size_t k, double* out_secs = nullptr) {
  MinAggregate f;
  WallTimer timer;
  auto result = algo.Run(g, def.dht, def.d, q, f, k);
  double secs = timer.Seconds();
  if (out_secs != nullptr) *out_secs = secs;
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kOutOfRange) {
      return "DNF(>" + TablePrinter::Num(kNlBudgetSeconds, 0) + "s)";
    }
    CheckOk(result.status(), algo.Name().c_str());
  }
  return TablePrinter::Secs(secs);
}

}  // namespace

int main() {
  auto ds = MakeYeast();
  PaperDefaults def;
  auto sets = BenchSets(ds, 7);
  std::printf("node sets: top-%zu by degree of 7 Yeast partitions\n\n",
              kSetSize);

  // ------------------------------------------------- (a) time vs n
  {
    std::printf("=== Figure 7(a): running time vs n (chain, k=m=50) ===\n");
    TablePrinter table("Yeast n-way join: time vs n",
                       {"n", "NL", "AP", "PJ", "PJ-i"});
    double pj_total = 0.0, pji_total = 0.0;
    for (std::size_t n = 2; n <= 7; ++n) {
      QueryGraph q = ChainQuery(sets, n);
      NestedLoopJoin nl(
          NestedLoopJoin::Options{.time_budget_seconds = kNlBudgetSeconds});
      AllPairsJoin ap;  // paper configuration: F-BJ engine
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      // NL beyond n = 3 is astronomically slow even with a budget; the
      // paper stops it at n >= 3 too.
      std::string nl_cell =
          n <= 3 ? RunTimed(nl, ds.graph, def, q, def.k) : "-";
      double pj_secs = 0.0, pji_secs = 0.0;
      std::string ap_cell = RunTimed(ap, ds.graph, def, q, def.k);
      std::string pj_cell =
          RunTimed(pj, ds.graph, def, q, def.k, &pj_secs);
      std::string pji_cell =
          RunTimed(pji, ds.graph, def, q, def.k, &pji_secs);
      pj_total += pj_secs;
      pji_total += pji_secs;
      table.AddRow({std::to_string(n), nl_cell, ap_cell, pj_cell,
                    pji_cell});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("shape check [PJ-i <= PJ overall]: %s\n\n",
                pji_total <= pj_total * 1.2 ? "PASS" : "FAIL");
  }

  // ---------------------------------------------- (b) time vs |E_Q|
  {
    std::printf("=== Figure 7(b): running time vs |E_Q| (3 sets) ===\n");
    TablePrinter table("Yeast n-way join: time vs |E_Q|",
                       {"|E_Q|", "AP", "PJ", "PJ-i"});
    for (int e = 2; e <= 6; ++e) {
      QueryGraph q = EdgeCountQuery(sets, e);
      AllPairsJoin ap;
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      table.AddRow({std::to_string(e), RunTimed(ap, ds.graph, def, q, def.k),
                    RunTimed(pj, ds.graph, def, q, def.k),
                    RunTimed(pji, ds.graph, def, q, def.k)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // -------------------------------------------------- (c) time vs k
  {
    std::printf("=== Figure 7(c): running time vs k (3-way chain) ===\n");
    QueryGraph q = ChainQuery(sets, 3);
    TablePrinter table("Yeast 3-way join: time vs k",
                       {"k", "AP", "PJ", "PJ-i"});
    for (std::size_t k : {10u, 50u, 100u, 200u}) {
      AllPairsJoin ap;
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      table.AddRow({std::to_string(k), RunTimed(ap, ds.graph, def, q, k),
                    RunTimed(pj, ds.graph, def, q, k),
                    RunTimed(pji, ds.graph, def, q, k)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // -------------------------------------------------- (d) time vs m
  {
    std::printf("=== Figure 7(d): running time vs m (3-way chain, k=50) "
                "===\n");
    QueryGraph q = ChainQuery(sets, 3);
    TablePrinter table("Yeast 3-way join: time vs m",
                       {"m", "PJ", "PJ-i"});
    double pj_small_m = 0.0, pj_large_m = 0.0;
    double pji_small_m = 0.0, pji_large_m = 0.0;
    for (std::size_t m : {10u, 20u, 50u, 100u, 200u, 500u}) {
      PartialJoin pj(PartialJoin::Options{.m = m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = m, .incremental = true});
      double pj_secs = 0.0, pji_secs = 0.0;
      std::string pj_cell = RunTimed(pj, ds.graph, def, q, def.k, &pj_secs);
      std::string pji_cell =
          RunTimed(pji, ds.graph, def, q, def.k, &pji_secs);
      if (m == 10) {
        pj_small_m = pj_secs;
        pji_small_m = pji_secs;
      }
      if (m == 200) {
        pj_large_m = pj_secs;
        pji_large_m = pji_secs;
      }
      table.AddRow({std::to_string(m), pj_cell, pji_cell});
    }
    std::printf("%s\n", table.Render().c_str());
    // Paper shape: PJ suffers badly at small m (constant re-joins); PJ-i
    // is much less sensitive.
    double pj_ratio = pj_small_m / std::max(pj_large_m, 1e-9);
    double pji_ratio = pji_small_m / std::max(pji_large_m, 1e-9);
    std::printf("m-sensitivity (time@m=10 / time@m=200): PJ %.1fx, PJ-i "
                "%.1fx\n",
                pj_ratio, pji_ratio);
    bool pass = pji_ratio < pj_ratio;
    std::printf("shape check [PJ-i less sensitive to m than PJ]: %s\n",
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
}
