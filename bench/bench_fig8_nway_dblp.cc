/// \file bench/bench_fig8_nway_dblp.cc
/// \brief Reproduces paper Figure 8: the Figure-7 sweeps on DBLP.
///   (a) time vs n — AP shown only where feasible (paper: "AP performs
///       badly in most experiments ... we only show some of its results")
///   (b) time vs |E_Q|, PJ / PJ-i
///   (c) time vs k, PJ / PJ-i
///   (d) time vs m, PJ / PJ-i
///
/// Paper shape: identical trends to Yeast at a larger scale; AP is only
/// measurable for the smallest queries.

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr std::size_t kSetSize = 40;

std::vector<NodeSet> BenchSets(const datasets::DblpLikeDataset& ds) {
  std::vector<NodeSet> sets;
  for (const char* name : {"DB", "AI", "SYS", "ML", "IR", "NET"}) {
    sets.push_back(
        Unwrap(ds.Area(name), "area").TopByDegree(ds.graph, kSetSize));
  }
  return sets;
}

QueryGraph ChainQuery(const std::vector<NodeSet>& sets, std::size_t n) {
  QueryGraph q;
  std::vector<int> attr;
  for (std::size_t i = 0; i < n; ++i) attr.push_back(q.AddNodeSet(sets[i]));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    CheckOk(q.AddEdge(attr[i], attr[i + 1]), "chain edge");
  }
  return q;
}

QueryGraph EdgeCountQuery(const std::vector<NodeSet>& sets, int num_edges) {
  QueryGraph q;
  int attrs[3] = {q.AddNodeSet(sets[0]), q.AddNodeSet(sets[1]),
                  q.AddNodeSet(sets[2])};
  struct E {
    int from, to;
  };
  static const E order[6] = {{0, 1}, {1, 2}, {0, 2},
                             {1, 0}, {2, 1}, {2, 0}};
  for (int e = 0; e < num_edges; ++e) {
    CheckOk(q.AddEdge(attrs[order[e].from], attrs[order[e].to]), "edge");
  }
  return q;
}

std::string RunTimed(NwayJoin& algo, const Graph& g,
                     const PaperDefaults& def, const QueryGraph& q,
                     std::size_t k, double* out_secs = nullptr) {
  MinAggregate f;
  WallTimer timer;
  auto result = algo.Run(g, def.dht, def.d, q, f, k);
  double secs = timer.Seconds();
  if (out_secs != nullptr) *out_secs = secs;
  CheckOk(result.status(), algo.Name().c_str());
  return TablePrinter::Secs(secs);
}

}  // namespace

int main() {
  auto ds = MakeDblp(10000);
  PaperDefaults def;
  auto sets = BenchSets(ds);
  std::printf("node sets: top-%zu by degree of 6 research areas\n\n",
              kSetSize);

  // ------------------------------------------------- (a) time vs n
  {
    std::printf("=== Figure 8(a): running time vs n (chain, k=m=50) ===\n");
    TablePrinter table("DBLP n-way join: time vs n",
                       {"n", "AP", "PJ", "PJ-i"});
    double pj_total = 0.0, pji_total = 0.0;
    for (std::size_t n = 2; n <= 6; ++n) {
      QueryGraph q = ChainQuery(sets, n);
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      // AP with its paper-configured F-BJ engine is ~|P| times slower
      // than the backward joins; only n = 2 completes in bench time.
      std::string ap_cell = "-";
      if (n == 2) {
        AllPairsJoin ap;
        ap_cell = RunTimed(ap, ds.graph, def, q, def.k);
      }
      double pj_secs = 0.0, pji_secs = 0.0;
      std::string pj_cell = RunTimed(pj, ds.graph, def, q, def.k, &pj_secs);
      std::string pji_cell =
          RunTimed(pji, ds.graph, def, q, def.k, &pji_secs);
      pj_total += pj_secs;
      pji_total += pji_secs;
      table.AddRow({std::to_string(n), ap_cell, pj_cell, pji_cell});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("shape check [PJ-i <= PJ overall]: %s\n\n",
                pji_total <= pj_total * 1.2 ? "PASS" : "FAIL");
  }

  // ---------------------------------------------- (b) time vs |E_Q|
  {
    std::printf("=== Figure 8(b): running time vs |E_Q| (3 sets) ===\n");
    TablePrinter table("DBLP n-way join: time vs |E_Q|",
                       {"|E_Q|", "PJ", "PJ-i"});
    for (int e = 2; e <= 6; ++e) {
      QueryGraph q = EdgeCountQuery(sets, e);
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      table.AddRow({std::to_string(e), RunTimed(pj, ds.graph, def, q, def.k),
                    RunTimed(pji, ds.graph, def, q, def.k)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // -------------------------------------------------- (c) time vs k
  {
    std::printf("=== Figure 8(c): running time vs k (3-way chain) ===\n");
    QueryGraph q = ChainQuery(sets, 3);
    TablePrinter table("DBLP 3-way join: time vs k", {"k", "PJ", "PJ-i"});
    for (std::size_t k : {10u, 50u, 100u, 200u}) {
      PartialJoin pj(PartialJoin::Options{.m = def.m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = def.m, .incremental = true});
      table.AddRow({std::to_string(k), RunTimed(pj, ds.graph, def, q, k),
                    RunTimed(pji, ds.graph, def, q, k)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // -------------------------------------------------- (d) time vs m
  {
    std::printf("=== Figure 8(d): running time vs m (3-way chain, k=50) "
                "===\n");
    QueryGraph q = ChainQuery(sets, 3);
    TablePrinter table("DBLP 3-way join: time vs m", {"m", "PJ", "PJ-i"});
    double pj_small = 0.0, pj_big = 0.0, pji_small = 0.0, pji_big = 0.0;
    for (std::size_t m : {10u, 20u, 50u, 100u, 200u}) {
      PartialJoin pj(PartialJoin::Options{.m = m, .incremental = false});
      PartialJoin pji(PartialJoin::Options{.m = m, .incremental = true});
      double pj_secs = 0.0, pji_secs = 0.0;
      std::string pj_cell = RunTimed(pj, ds.graph, def, q, def.k, &pj_secs);
      std::string pji_cell =
          RunTimed(pji, ds.graph, def, q, def.k, &pji_secs);
      if (m == 10) {
        pj_small = pj_secs;
        pji_small = pji_secs;
      }
      if (m == 200) {
        pj_big = pj_secs;
        pji_big = pji_secs;
      }
      table.AddRow({std::to_string(m), pj_cell, pji_cell});
    }
    std::printf("%s\n", table.Render().c_str());
    double pj_ratio = pj_small / std::max(pj_big, 1e-9);
    double pji_ratio = pji_small / std::max(pji_big, 1e-9);
    std::printf("m-sensitivity (time@m=10 / time@m=200): PJ %.1fx, PJ-i "
                "%.1fx\n",
                pj_ratio, pji_ratio);
    bool pass = pji_ratio < pj_ratio;
    std::printf("shape check [PJ-i less sensitive to m than PJ]: %s\n",
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
}
