/// \file bench/bench_ablation_ap_engine.cc
/// \brief Ablations beyond the paper's figures, for the design choices
/// DESIGN.md calls out:
///   1. AP's 2-way engine — the paper wires F-BJ into AP; swapping in
///      B-BJ computes identical lists a factor ~|P| faster, showing AP's
///      deficit against PJ is mostly the engine, not the rank join.
///   2. PJ's remainder bound — PJ/PJ-i with the X bound instead of Y.
///   3. PJ-i's eager depth m = 0 (fully lazy) vs the paper's m = k.

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

QueryGraph ChainQuery(const std::vector<NodeSet>& sets) {
  QueryGraph q;
  std::vector<int> attr;
  for (const NodeSet& s : sets) attr.push_back(q.AddNodeSet(s));
  for (std::size_t i = 0; i + 1 < sets.size(); ++i) {
    CheckOk(q.AddEdge(attr[i], attr[i + 1]), "edge");
  }
  return q;
}

double Run(NwayJoin& algo, const Graph& g, const PaperDefaults& def,
           const QueryGraph& q, double* out_f = nullptr) {
  MinAggregate f;
  WallTimer timer;
  auto result = algo.Run(g, def.dht, def.d, q, f, def.k);
  double secs = timer.Seconds();
  CheckOk(result.status(), algo.Name().c_str());
  if (out_f != nullptr && !result->empty()) *out_f = (*result)[0].f;
  return secs;
}

}  // namespace

int main() {
  auto ds = MakeYeast();
  PaperDefaults def;
  std::vector<NodeSet> sets;
  for (int i = 0; i < 3; ++i) {
    sets.push_back(ds.partitions[i].TopByDegree(ds.graph, 40));
  }
  QueryGraph q = ChainQuery(sets);

  std::printf("=== Ablation 1: AP engine (F-BJ vs B-BJ) ===\n");
  {
    AllPairsJoin fwd(AllPairsJoin::Options{AllPairsJoin::Engine::kForward});
    AllPairsJoin bwd(AllPairsJoin::Options{AllPairsJoin::Engine::kBackward});
    double f_fwd = 0.0, f_bwd = 0.0;
    double t_fwd = Run(fwd, ds.graph, def, q, &f_fwd);
    double t_bwd = Run(bwd, ds.graph, def, q, &f_bwd);
    TablePrinter table("AP on Yeast 3-way chain (top-40 sets)",
                       {"engine", "time", "top-1 f"});
    table.AddRow({"F-BJ (paper)", TablePrinter::Secs(t_fwd),
                  TablePrinter::Num(f_fwd, 6)});
    table.AddRow({"B-BJ (ablation)", TablePrinter::Secs(t_bwd),
                  TablePrinter::Num(f_bwd, 6)});
    std::printf("%s\n", table.Render().c_str());
    std::printf("same answers: %s; backward speedup: %.1fx\n\n",
                std::abs(f_fwd - f_bwd) < 1e-9 ? "yes" : "NO",
                t_fwd / std::max(t_bwd, 1e-9));
  }

  std::printf("=== Ablation 2: PJ remainder bound (Y vs X) ===\n");
  {
    TablePrinter table("PJ / PJ-i on Yeast 3-way chain",
                       {"algorithm", "bound", "time"});
    for (bool incremental : {false, true}) {
      for (UpperBoundKind bound :
           {UpperBoundKind::kY, UpperBoundKind::kX}) {
        PartialJoin pj(PartialJoin::Options{
            .m = def.m, .incremental = incremental, .bound = bound});
        double t = Run(pj, ds.graph, def, q);
        table.AddRow({incremental ? "PJ-i" : "PJ",
                      bound == UpperBoundKind::kY ? "Y" : "X",
                      TablePrinter::Secs(t)});
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("=== Ablation 3: PJ-i eagerness (m = 0 vs m = k) ===\n");
  {
    TablePrinter table("PJ-i on Yeast 3-way chain", {"m", "time"});
    for (std::size_t m : {0u, 10u, 50u}) {
      PartialJoin pji(
          PartialJoin::Options{.m = m, .incremental = true});
      double t = Run(pji, ds.graph, def, q);
      table.AddRow({std::to_string(m), TablePrinter::Secs(t)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("=== Ablation 4: rank-join pulling (HRJN vs HRJN*) ===\n");
  {
    TablePrinter table("PJ-i on Yeast 3-way chain",
                       {"pulling", "time", "pairs pulled"});
    for (PullStrategy strategy :
         {PullStrategy::kRoundRobin, PullStrategy::kAdaptive}) {
      PartialJoin pji(PartialJoin::Options{.m = def.m,
                                           .incremental = true,
                                           .pull_strategy = strategy});
      double t = Run(pji, ds.graph, def, q);
      int64_t pulls = 0;
      for (int64_t x : pji.stats().pulls_per_edge) pulls += x;
      table.AddRow({strategy == PullStrategy::kRoundRobin
                        ? "round-robin (paper)"
                        : "adaptive (HRJN*)",
                    TablePrinter::Secs(t), std::to_string(pulls)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}
