/// \file bench/bench_serving.cc
/// \brief Serving-path benchmark: a Zipfian repeated-query workload
/// through DhtJoinService, warm (cross-query ScoreCache) vs cold
/// (budget-0 cache, every query recomputes).
///
/// This is the acceptance harness for the serving layer: it runs the
/// SAME request stream through both configurations, asserts every warm
/// answer is byte-identical to its cold answer (and that both match a
/// fresh BIdjJoin::Run per template — the library cold path), and
/// gates on warm being >= 2x faster per query. Cache hit rates and the
/// walk-state pool counters (TwoWayJoinStats::state_*) are printed and
/// written to BENCH_serving.json for the perf trajectory (committed
/// dev-box baseline: bench/baselines/BENCH_serving.json).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "join2/b_idj.h"
#include "serve/session.h"
#include "serve/workload.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

struct StreamResult {
  double total_seconds = 0.0;
  double repeat_seconds = 0.0;  // requests after their template's first
  std::size_t repeat_requests = 0;
  int64_t warm_targets = 0;
  int64_t cold_targets = 0;
  int64_t walk_steps = 0;
  int64_t state_hits = 0;
  int64_t state_misses = 0;
  int64_t state_evictions = 0;
  std::vector<std::vector<ScoredPair>> answers;
};

StreamResult RunStream(serve::DhtJoinService& service,
                       const serve::ServingWorkload& workload) {
  StreamResult r;
  std::vector<char> seen(workload.num_templates, 0);
  for (const serve::TwoWayRequest& req : workload.requests) {
    serve::QueryStats qs;
    auto result = service.TwoWay(req.P, req.Q, req.k, &qs);
    CheckOk(result.status(), "service TwoWay");
    r.total_seconds += qs.seconds;
    if (seen[req.template_id]) {
      r.repeat_seconds += qs.seconds;
      r.repeat_requests++;
    }
    seen[req.template_id] = 1;
    r.warm_targets += qs.warm_targets;
    r.cold_targets += qs.cold_targets;
    r.walk_steps += qs.join.walk_steps;
    r.state_hits += qs.join.state_hits;
    r.state_misses += qs.join.state_misses;
    r.state_evictions += qs.join.state_evictions;
    r.answers.push_back(std::move(*result));
  }
  return r;
}

}  // namespace

int main() {
  auto ds = MakeDblp();
  const Graph& g = ds.graph;
  PaperDefaults defaults;
  const DhtParams& p = defaults.dht;
  const int d = defaults.d;

  serve::WorkloadOptions wopts;
  wopts.num_requests = 120;
  wopts.num_templates = 12;
  wopts.zipf_s = 1.0;
  wopts.set_size = 100;
  wopts.k = defaults.k;
  wopts.seed = 29;
  auto workload =
      Unwrap(serve::GenerateZipfianTwoWayWorkload(g, ds.areas, wopts),
             "GenerateZipfianTwoWayWorkload");
  std::printf("[setup] %zu requests over %zu templates (zipf %.1f, "
              "|P|=|Q|=%zu, k=%zu)\n",
              workload.requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k);

  // Library cold path per template: the byte-identity reference.
  std::vector<std::vector<ScoredPair>> reference(workload.num_templates);
  std::vector<char> have_reference(workload.num_templates, 0);
  for (const serve::TwoWayRequest& req : workload.requests) {
    if (have_reference[req.template_id]) continue;
    BIdjJoin join;
    reference[req.template_id] =
        Unwrap(join.Run(g, p, d, req.P, req.Q, req.k), "BIdjJoin");
    have_reference[req.template_id] = 1;
  }

  serve::DhtJoinService::Options cold_opts;
  cold_opts.cache_budget_bytes = 0;  // hold nothing: every query is cold
  cold_opts.num_threads = 1;
  serve::DhtJoinService cold_service(g, p, d, cold_opts);
  StreamResult cold = RunStream(cold_service, workload);

  serve::DhtJoinService warm_service(g, p, d,
                                     serve::DhtJoinService::Options{
                                         .num_threads = 1});
  StreamResult warm = RunStream(warm_service, workload);

  // Byte-identity: every warm answer == its cold answer == the fresh
  // BIdjJoin answer of its template.
  bool identical = true;
  for (std::size_t i = 0; i < workload.requests.size(); ++i) {
    const auto& ref = reference[workload.requests[i].template_id];
    if (!(warm.answers[i] == cold.answers[i]) || !(warm.answers[i] == ref)) {
      identical = false;
      std::fprintf(stderr, "FAIL: answer mismatch at request %zu\n", i);
      break;
    }
  }

  const double n = static_cast<double>(workload.requests.size());
  const double cold_ms = cold.total_seconds * 1e3 / n;
  const double warm_ms = warm.total_seconds * 1e3 / n;
  const double speedup = cold_ms / std::max(warm_ms, 1e-9);
  const double warm_repeat_ms =
      warm.repeat_requests == 0
          ? 0.0
          : warm.repeat_seconds * 1e3 /
                static_cast<double>(warm.repeat_requests);
  serve::CacheStats cache = warm_service.cache_stats();
  const double hit_rate =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);
  const double warm_target_rate =
      warm.warm_targets + warm.cold_targets == 0
          ? 0.0
          : static_cast<double>(warm.warm_targets) /
                static_cast<double>(warm.warm_targets + warm.cold_targets);

  std::printf("\nserving, %zu-request Zipfian stream (DBLP-like, d=%d):\n",
              workload.requests.size(), d);
  std::printf("  cold (budget-0 cache):  %8.3f ms/query, %lld walk steps\n",
              cold_ms, static_cast<long long>(cold.walk_steps));
  std::printf("  warm (ScoreCache):      %8.3f ms/query, %lld walk steps "
              "(%.1fx faster)\n",
              warm_ms, static_cast<long long>(warm.walk_steps), speedup);
  std::printf("  warm repeats only:      %8.3f ms/query over %zu repeats\n",
              warm_repeat_ms, warm.repeat_requests);
  std::printf("  cache: %.1f%% hit rate (%lld hits / %lld misses), "
              "%lld evictions, %zu entries, %.1f MB resident\n",
              hit_rate * 1e2, static_cast<long long>(cache.hits),
              static_cast<long long>(cache.misses),
              static_cast<long long>(cache.evictions), cache.entries,
              static_cast<double>(cache.resident_bytes) / (1 << 20));
  std::printf("  targets resumed warm: %.1f%% (%lld of %lld)\n",
              warm_target_rate * 1e2,
              static_cast<long long>(warm.warm_targets),
              static_cast<long long>(warm.warm_targets + warm.cold_targets));
  std::printf("  state pools: %lld hits, %lld misses, %lld evictions "
              "(warm stream)\n",
              static_cast<long long>(warm.state_hits),
              static_cast<long long>(warm.state_misses),
              static_cast<long long>(warm.state_evictions));
  std::printf("  byte-identical warm == cold == fresh B-IDJ: %s\n",
              identical ? "yes" : "NO");

  JsonObject doc;
  doc.Set("bench", std::string("serving"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("num_requests", static_cast<int64_t>(workload.requests.size()))
      .Set("num_templates", static_cast<int64_t>(workload.num_templates))
      .Set("zipf_s", wopts.zipf_s)
      .Set("set_size", static_cast<int64_t>(wopts.set_size))
      .Set("k", static_cast<int64_t>(wopts.k))
      .Set("d", d)
      .Set("cold_ms_per_query", cold_ms)
      .Set("warm_ms_per_query", warm_ms)
      .Set("warm_repeat_ms_per_query", warm_repeat_ms)
      .Set("warm_over_cold_speedup", speedup)
      .Set("cold_walk_steps", cold.walk_steps)
      .Set("warm_walk_steps", warm.walk_steps)
      .Set("cache_hit_rate", hit_rate)
      .Set("cache_hits", cache.hits)
      .Set("cache_misses", cache.misses)
      .Set("cache_evictions", cache.evictions)
      .Set("cache_entries", static_cast<int64_t>(cache.entries))
      .Set("cache_resident_bytes",
           static_cast<int64_t>(cache.resident_bytes))
      .Set("cache_budget_bytes",
           static_cast<int64_t>(warm_service.cache().max_bytes()))
      .Set("warm_target_rate", warm_target_rate)
      .Set("state_hits", warm.state_hits)
      .Set("state_misses", warm.state_misses)
      .Set("state_evictions", warm.state_evictions)
      .Set("byte_identical", std::string(identical ? "true" : "false"));
  WriteJsonFile("BENCH_serving.json", doc.ToString());
  std::printf("\nwrote BENCH_serving.json (warm-over-cold: %.1fx, hit rate "
              "%.1f%%)\n",
              speedup, hit_rate * 1e2);

  if (!identical) {
    std::fprintf(stderr, "FAIL: warm results not byte-identical to cold\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm-over-cold speedup %.2fx below the 2x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}
