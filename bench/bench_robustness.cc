/// \file bench/bench_robustness.cc
/// \brief Chaos benchmark for the query-lifecycle robustness layer:
/// a Zipfian stream where every query draws a deterministic chaos plan
/// (tight deadline, effort budget, mid-run cancel, injected commit
/// faults — util/fault_injection.h), followed by an overload burst of
/// concurrent sessions against a capped admission gate.
///
/// Acceptance gates (exit nonzero on violation):
///  * ZERO CRASHES: every query resolves with OK, Cancelled, or
///    ResourceExhausted — nothing terminates, nothing wedges the pool;
///  * NO CORRUPTION: every query that COMPLETED (not degraded) returns
///    the template's reference answer byte-for-byte, whatever faults
///    were injected (commit faults restart walks bit-identically);
///  * VALID ε-BOUNDS: for 100% of degraded answers, every reported
///    score s satisfies s <= h_d <= s + eps_bound against an exact
///    d-step walk (DESIGN.md §9);
///  * BOUNDED OVERSHOOT: deadline-degraded queries in the steady
///    (synchronous) phase return within kOvershootGateMs of their
///    deadline — the cut happens one block group past expiry, never a
///    full run later (the burst phase's overshoot includes queue wait
///    and is reported, not gated).
///
/// `--smoke` (CI, laptops) shrinks the graph and the stream and
/// downgrades the wall-clock-dependent overshoot gate to a warning;
/// the full run writes the committed dev-box baseline
/// (bench/baselines/BENCH_robustness.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dht/backward.h"
#include "join2/b_idj.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/rng.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

// Steady-phase overshoot gate: a deadline-degraded query must return
// within this many ms past its deadline. One block group is sub-ms on
// the dev box; the slack absorbs scheduler noise, not extra rounds.
constexpr double kOvershootGateMs = 150.0;

/// What one query draws from the chaos plan. Buckets are disjoint so
/// counters are attributable.
struct ChaosPlan {
  int64_t deadline_ms = 0;       // 0 = unbounded
  int64_t effort_blocks = 0;     // 0 = unbounded
  int64_t cancel_at_check = 0;   // 0 = no cancel
  double commit_fail_rate = 0.0; // 0 = no commit faults
};

/// Deterministic per-query plan: same seed + index → same chaos on
/// every machine and run.
ChaosPlan DrawPlan(uint64_t seed, std::size_t query_index) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (query_index + 1)));
  ChaosPlan plan;
  const uint64_t bucket = rng.Below(100);
  if (bucket < 50) {
    // 50%: clean unbounded query.
  } else if (bucket < 70) {
    // 20%: tight deadline, 2..9 ms — most of these degrade cold and
    // complete warm.
    plan.deadline_ms = 2 + static_cast<int64_t>(rng.Below(8));
  } else if (bucket < 80) {
    // 10%: clock-free effort budget, 4..35 block groups.
    plan.effort_blocks = 4 + static_cast<int64_t>(rng.Below(32));
  } else if (bucket < 85) {
    // 5%: hard cancel at an early block-group check.
    plan.cancel_at_check = 1 + static_cast<int64_t>(rng.Below(16));
  } else {
    // 15%: simulated state-pool allocation failure.
    plan.commit_fail_rate = 0.2;
  }
  return plan;
}

struct Tally {
  int64_t ok_full = 0;
  int64_t ok_degraded = 0;
  int64_t cancelled = 0;
  int64_t shed = 0;
  int64_t unexpected = 0;       // gate: must stay 0
  int64_t corrupted = 0;        // gate: must stay 0
  int64_t eps_pairs = 0;
  int64_t eps_violations = 0;   // gate: must stay 0
  double max_overshoot_ms = 0.0;
  int64_t deadline_degrades_timed = 0;
  int64_t commit_faults = 0;
};

/// A degraded pair queued for exact verification, grouped by target so
/// each distinct q pays one exact d-step walk.
struct EpsCheck {
  NodeId p;
  double score;
  double eps;
};

void VerifyEps(const Graph& g, const DhtParams& params, int d,
               std::map<NodeId, std::vector<EpsCheck>>& by_target,
               Tally& tally) {
  BackwardWalker walker(g);
  for (auto& [q, checks] : by_target) {
    walker.Reset(params, ExtNodeId(q));
    walker.Advance(d);
    for (const EpsCheck& c : checks) {
      ++tally.eps_pairs;
      const double exact = walker.Score(ExtNodeId(c.p));
      if (!(c.score <= exact + 1e-12 && exact <= c.score + c.eps + 1e-12)) {
        ++tally.eps_violations;
        std::fprintf(stderr,
                     "EPS VIOLATION q=%d p=%d score=%.17g exact=%.17g "
                     "eps=%.17g\n",
                     q, c.p, c.score, exact, c.eps);
      }
    }
  }
}

bool SameAnswer(const std::vector<ScoredPair>& a,
                const std::vector<ScoredPair>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].p != b[i].p || a[i].q != b[i].q || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  auto ds = smoke ? MakeDblp(4000) : MakeDblp();
  const Graph& g = ds.graph;
  PaperDefaults defaults;
  const DhtParams& p = defaults.dht;
  const int d = defaults.d;
  const uint64_t kChaosSeed = 0xC0FFEEULL;

  serve::WorkloadOptions wopts;
  wopts.num_requests = smoke ? 300 : 10000;
  wopts.num_templates = smoke ? 16 : 64;
  wopts.zipf_s = 1.0;
  wopts.set_size = 100;
  wopts.k = defaults.k;
  wopts.seed = 29;
  auto workload =
      Unwrap(serve::GenerateZipfianTwoWayWorkload(g, ds.areas, wopts),
             "GenerateZipfianTwoWayWorkload");
  std::printf("[setup] chaos stream: %zu requests over %zu templates "
              "(zipf %.1f, |P|=|Q|=%zu, k=%zu, d=%d)\n",
              workload.requests.size(), workload.num_templates, wopts.zipf_s,
              wopts.set_size, wopts.k, d);

  // Reference answer per template (fresh B-IDJ): the no-corruption
  // oracle for every COMPLETED chaos query.
  std::vector<std::vector<ScoredPair>> reference(workload.num_templates);
  std::vector<char> have_reference(workload.num_templates, 0);
  for (const serve::TwoWayRequest& req : workload.requests) {
    if (have_reference[req.template_id]) continue;
    BIdjJoin join;
    reference[req.template_id] =
        Unwrap(join.Run(g, p, d, req.P, req.Q, req.k), "BIdjJoin reference");
    have_reference[req.template_id] = 1;
  }

  serve::DhtJoinService::Options sopts;
  sopts.admission.max_in_flight = 32;  // burst-phase gate; sync bypasses
  // Explicit worker count: on a 1-core machine the default pool runs
  // inline on the submitting thread, which would serialize the burst
  // and let every query finish before the next submit — no overload,
  // nothing to shed. Real workers make the burst an actual burst.
  sopts.num_threads = 4;
  serve::DhtJoinService service(g, p, d, sopts);

  Tally tally;
  std::map<NodeId, std::vector<EpsCheck>> eps_checks;
  auto account = [&](const Result<std::vector<ScoredPair>>& result,
                     const serve::QueryStats& qs) {
    switch (result.status().code()) {
      case StatusCode::kOk:
        break;
      case StatusCode::kCancelled:
        ++tally.cancelled;
        return;
      case StatusCode::kResourceExhausted:
        ++tally.shed;
        return;
      default:
        ++tally.unexpected;
        std::fprintf(stderr, "UNEXPECTED STATUS: %s\n",
                     result.status().ToString().c_str());
        return;
    }
    if (qs.join.partial.degraded) {
      ++tally.ok_degraded;
      for (const ScoredPair& sp : *result) {
        eps_checks[sp.q].push_back(
            EpsCheck{sp.p, sp.score, qs.join.partial.eps_bound});
      }
    } else {
      ++tally.ok_full;
    }
  };

  // ---------------------------------------------- steady (sync) phase
  WallTimer stream_timer;
  std::size_t burst_begin = workload.requests.size() / 2;
  std::size_t burst_end =
      std::min(workload.requests.size(),
               burst_begin + (smoke ? std::size_t{64} : std::size_t{512}));
  for (std::size_t i = 0; i < workload.requests.size(); ++i) {
    if (i >= burst_begin && i < burst_end) continue;  // burst runs below
    const serve::TwoWayRequest& req = workload.requests[i];
    ChaosPlan plan = DrawPlan(kChaosSeed, i);
    ExecContext exec;
    if (plan.deadline_ms > 0) {
      exec.deadline = Deadline::AfterMillis(plan.deadline_ms);
    }
    exec.effort_budget_blocks = plan.effort_blocks;
    FaultInjector injector(FaultPlan{.cancel_at_check = plan.cancel_at_check,
                                     .commit_fail_rate =
                                         plan.commit_fail_rate,
                                     .seed = kChaosSeed ^ i});
    injector.Arm(exec);
    serve::QueryStats qs;
    WallTimer timer;
    auto result = service.TwoWay(req.P, req.Q, req.k, &qs, &exec);
    const double elapsed_ms = timer.Seconds() * 1e3;
    tally.commit_faults += injector.commit_faults_fired();
    if (result.ok() && qs.join.partial.degraded &&
        exec.stop_code() == StatusCode::kDeadlineExceeded &&
        plan.deadline_ms > 0) {
      ++tally.deadline_degrades_timed;
      tally.max_overshoot_ms =
          std::max(tally.max_overshoot_ms,
                   elapsed_ms - static_cast<double>(plan.deadline_ms));
    }
    if (result.ok() && !qs.join.partial.degraded &&
        !SameAnswer(*result, reference[req.template_id])) {
      ++tally.corrupted;
      std::fprintf(stderr, "CORRUPTION at request %zu\n", i);
    }
    account(result, qs);
  }

  // ------------------------------------------- overload burst phase
  // The burst slice goes through SubmitTwoWay all at once: admission
  // (max_in_flight) sheds the overflow, queued queries with tight
  // deadlines expire and degrade at dequeue, the rest complete.
  {
    std::vector<std::future<Result<std::vector<ScoredPair>>>> futures;
    std::vector<std::shared_ptr<ExecContext>> execs;
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    std::vector<std::unique_ptr<serve::QueryStats>> stats;
    for (std::size_t i = burst_begin; i < burst_end; ++i) {
      const serve::TwoWayRequest& req = workload.requests[i];
      ChaosPlan plan = DrawPlan(kChaosSeed, i);
      serve::QueryOptions qopts;
      qopts.exec = std::make_shared<ExecContext>();
      if (plan.deadline_ms > 0) {
        qopts.exec->deadline = Deadline::AfterMillis(plan.deadline_ms);
      }
      qopts.exec->effort_budget_blocks = plan.effort_blocks;
      injectors.push_back(std::make_unique<FaultInjector>(
          FaultPlan{.cancel_at_check = plan.cancel_at_check,
                    .commit_fail_rate = plan.commit_fail_rate,
                    .seed = kChaosSeed ^ i}));
      injectors.back()->Arm(*qopts.exec);
      stats.push_back(std::make_unique<serve::QueryStats>());
      qopts.stats = stats.back().get();
      execs.push_back(qopts.exec);
      futures.push_back(
          service.SubmitTwoWay(req.P, req.Q, req.k, std::move(qopts)));
    }
    for (std::size_t j = 0; j < futures.size(); ++j) {
      auto result = futures[j].get();
      const serve::TwoWayRequest& req = workload.requests[burst_begin + j];
      tally.commit_faults += injectors[j]->commit_faults_fired();
      if (result.ok() && !stats[j]->join.partial.degraded &&
          !SameAnswer(*result, reference[req.template_id])) {
        ++tally.corrupted;
        std::fprintf(stderr, "CORRUPTION at burst request %zu\n",
                     burst_begin + j);
      }
      account(result, *stats[j]);
    }
  }
  const double stream_seconds = stream_timer.Seconds();

  // ------------------------------------------------- eps validation
  VerifyEps(g, p, d, eps_checks, tally);

  serve::ServiceStats ss = service.service_stats();
  const int64_t total = static_cast<int64_t>(workload.requests.size());
  std::printf("\nchaos stream (%s): %lld queries in %.2f s\n",
              smoke ? "smoke" : "full", static_cast<long long>(total),
              stream_seconds);
  std::printf("  completed full:    %lld\n",
              static_cast<long long>(tally.ok_full));
  std::printf("  degraded (eps ok): %lld  (deadline %lld, effort %lld)\n",
              static_cast<long long>(tally.ok_degraded),
              static_cast<long long>(ss.deadline_exceeded),
              static_cast<long long>(ss.effort_exhausted));
  std::printf("  cancelled:         %lld\n",
              static_cast<long long>(tally.cancelled));
  std::printf("  shed (admission):  %lld  (capacity %lld, expired in "
              "queue %lld)\n",
              static_cast<long long>(tally.shed),
              static_cast<long long>(ss.admission.shed_capacity),
              static_cast<long long>(ss.admission.shed_expired));
  std::printf("  commit faults injected: %lld (results unchanged)\n",
              static_cast<long long>(tally.commit_faults));
  std::printf("  eps-bound pairs checked: %lld, violations: %lld\n",
              static_cast<long long>(tally.eps_pairs),
              static_cast<long long>(tally.eps_violations));
  std::printf("  steady-phase deadline overshoot: max %.2f ms over %lld "
              "timed degrades (gate %.0f ms)\n",
              tally.max_overshoot_ms,
              static_cast<long long>(tally.deadline_degrades_timed),
              kOvershootGateMs);

  bool ok = true;
  auto gate = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what);
    ok = ok && pass;
  };
  gate(tally.unexpected == 0, "zero crashes / unexpected statuses");
  gate(tally.corrupted == 0, "completed answers byte-identical to reference");
  gate(tally.eps_violations == 0, "100% of eps-bounds contain exact scores");
  gate(tally.ok_degraded > 0 && tally.cancelled > 0 && tally.shed > 0 &&
           tally.commit_faults > 0,
       "chaos coverage: degrades, cancels, sheds, commit faults all fired");
  const bool overshoot_ok = tally.deadline_degrades_timed == 0 ||
                            tally.max_overshoot_ms <= kOvershootGateMs;
  if (smoke) {
    std::printf("  [%s] deadline overshoot within gate (smoke: warn only)\n",
                overshoot_ok ? "PASS" : "WARN");
  } else {
    gate(overshoot_ok, "deadline overshoot within gate");
  }

  JsonObject doc;
  doc.Set("bench", std::string("robustness"))
      .Set("mode", std::string(smoke ? "smoke" : "full"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(g.num_nodes()))
      .Set("num_edges", g.num_edges())
      .Set("num_requests", total)
      .Set("num_templates", static_cast<int64_t>(workload.num_templates))
      .Set("stream_seconds", stream_seconds)
      .Set("completed_full", tally.ok_full)
      .Set("degraded", tally.ok_degraded)
      .Set("degraded_deadline", ss.deadline_exceeded)
      .Set("degraded_effort", ss.effort_exhausted)
      .Set("cancelled", tally.cancelled)
      .Set("shed", tally.shed)
      .Set("shed_capacity", ss.admission.shed_capacity)
      .Set("shed_expired", ss.admission.shed_expired)
      .Set("commit_faults", tally.commit_faults)
      .Set("eps_pairs_checked", tally.eps_pairs)
      .Set("eps_violations", tally.eps_violations)
      .Set("max_overshoot_ms", tally.max_overshoot_ms)
      .Set("overshoot_gate_ms", kOvershootGateMs)
      .Set("unexpected_statuses", tally.unexpected)
      .Set("corrupted_answers", tally.corrupted)
      .Set("zero_crashes", static_cast<int64_t>(tally.unexpected == 0))
      .Set("byte_identical_completed",
           static_cast<int64_t>(tally.corrupted == 0))
      .Set("eps_bounds_valid",
           static_cast<int64_t>(tally.eps_violations == 0));
  WriteJsonFile("BENCH_robustness.json", doc.ToString());
  std::printf("\nwrote BENCH_robustness.json\n");

  if (!ok) {
    std::fprintf(stderr, "\nROBUSTNESS GATES FAILED\n");
    return 1;
  }
  std::printf("all robustness gates passed\n");
  return 0;
}
