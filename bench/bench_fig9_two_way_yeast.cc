/// \file bench/bench_fig9_two_way_yeast.cc
/// \brief Reproduces paper Figure 9: 2-way join efficiency on Yeast.
///   (a) all five algorithms at the defaults
///   (b) backward algorithms vs epsilon (via Lemma 1's d)
///   (c) backward algorithms vs lambda
///   (d) backward algorithms vs k
///
/// Paper shapes: backward >> forward (factor ~|P|); the B-IDJ variants
/// beat B-BJ thanks to pruning; B-IDJ-X degrades to B-BJ as lambda
/// grows while B-IDJ-Y keeps its lead; B-BJ is k-independent.

#include <memory>

#include "bench_common.h"

using namespace dhtjoin;        // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr std::size_t kSetSize = 150;

double RunJoin(TwoWayJoin& algo, const Graph& g, const DhtParams& p, int d,
               const NodeSet& P, const NodeSet& Q, std::size_t k,
               int repeats) {
  return TimeIt(repeats, [&] {
    auto result = algo.Run(g, p, d, P, Q, k);
    CheckOk(result.status(), algo.Name().c_str());
  });
}

}  // namespace

int main() {
  auto ds = MakeYeast();
  PaperDefaults def;
  // The link-prediction node sets of Sec VII-B, capped for bench time
  // (F-BJ pays |P| * |Q| full walks).
  NodeSet P = Unwrap(ds.Partition("3-U"), "partition")
                  .TopByDegree(ds.graph, kSetSize);
  NodeSet Q = Unwrap(ds.Partition("8-D"), "partition")
                  .TopByDegree(ds.graph, kSetSize);
  std::printf("node sets: |P| = %zu (3-U), |Q| = %zu (8-D)\n\n", P.size(),
              Q.size());

  // ------------------------------------------- (a) the five algorithms
  double bidj_y_time = 0.0, fbj_time = 0.0;
  {
    std::printf("=== Figure 9(a): all five 2-way join algorithms ===\n");
    TablePrinter table("Yeast 2-way join, k=50, DHTlambda(0.2), d=8",
                       {"algorithm", "time", "speedup vs F-BJ"});
    std::vector<std::unique_ptr<TwoWayJoin>> algos;
    algos.push_back(std::make_unique<FBjJoin>());
    algos.push_back(std::make_unique<FIdjJoin>());
    algos.push_back(std::make_unique<BBjJoin>());
    algos.push_back(
        std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kX}));
    algos.push_back(
        std::make_unique<BIdjJoin>(BIdjJoin::Options{UpperBoundKind::kY}));
    for (auto& algo : algos) {
      bool forward = algo->Name()[0] == 'F';
      double secs = RunJoin(*algo, ds.graph, def.dht, def.d, P, Q, def.k,
                            forward ? 1 : 5);
      if (algo->Name() == "F-BJ") fbj_time = secs;
      if (algo->Name() == "B-IDJ-Y") bidj_y_time = secs;
      table.AddRow({algo->Name(), TablePrinter::Secs(secs),
                    fbj_time > 0 ? TablePrinter::Num(fbj_time / secs, 1) + "x"
                                 : "1.0x"});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("shape check [B-IDJ-Y >= 100x faster than F-BJ]: %s\n\n",
                fbj_time / bidj_y_time >= 100.0 ? "PASS" : "FAIL");
  }

  // -------------------------------------------------- (b) vs epsilon
  {
    std::printf("=== Figure 9(b): backward algorithms vs epsilon ===\n");
    TablePrinter table("Yeast 2-way join: time vs epsilon (lambda=0.2)",
                       {"epsilon", "d", "B-BJ", "B-IDJ-X", "B-IDJ-Y"});
    for (double eps : {1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}) {
      int d = def.dht.StepsForEpsilon(eps);
      BBjJoin bbj;
      BIdjJoin bx(BIdjJoin::Options{UpperBoundKind::kX});
      BIdjJoin by(BIdjJoin::Options{UpperBoundKind::kY});
      char eps_label[32];
      std::snprintf(eps_label, sizeof(eps_label), "%.0e", eps);
      table.AddRow(
          {eps_label, std::to_string(d),
           TablePrinter::Secs(
               RunJoin(bbj, ds.graph, def.dht, d, P, Q, def.k, 5)),
           TablePrinter::Secs(
               RunJoin(bx, ds.graph, def.dht, d, P, Q, def.k, 5)),
           TablePrinter::Secs(
               RunJoin(by, ds.graph, def.dht, d, P, Q, def.k, 5))});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // --------------------------------------------------- (c) vs lambda
  double x_slowdown = 0.0, y_slowdown = 0.0;
  bool y_beats_x = true;
  {
    std::printf("=== Figure 9(c): backward algorithms vs lambda ===\n");
    TablePrinter table("Yeast 2-way join: time vs lambda (epsilon=1e-6)",
                       {"lambda", "d", "B-BJ", "B-IDJ-X", "B-IDJ-Y"});
    double x_first = 0.0, x_last = 0.0, y_first = 0.0, y_last = 0.0;
    for (double lambda : {0.2, 0.4, 0.6, 0.8}) {
      DhtParams p = DhtParams::Lambda(lambda);
      int d = p.StepsForEpsilon(1e-6);
      BBjJoin bbj;
      BIdjJoin bx(BIdjJoin::Options{UpperBoundKind::kX});
      BIdjJoin by(BIdjJoin::Options{UpperBoundKind::kY});
      double tb = RunJoin(bbj, ds.graph, p, d, P, Q, def.k, 3);
      double tx = RunJoin(bx, ds.graph, p, d, P, Q, def.k, 3);
      double ty = RunJoin(by, ds.graph, p, d, P, Q, def.k, 3);
      if (lambda == 0.2) {
        x_first = tx;
        y_first = ty;
      }
      if (lambda == 0.8) {
        x_last = tx;
        y_last = ty;
      }
      if (ty > tx) y_beats_x = false;
      table.AddRow({TablePrinter::Num(lambda, 1), std::to_string(d),
                    TablePrinter::Secs(tb), TablePrinter::Secs(tx),
                    TablePrinter::Secs(ty)});
    }
    std::printf("%s\n", table.Render().c_str());
    x_slowdown = x_last / std::max(x_first, 1e-9);
    y_slowdown = y_last / std::max(y_first, 1e-9);
    std::printf("slowdown 0.2 -> 0.8: B-IDJ-X %.1fx, B-IDJ-Y %.1fx\n",
                x_slowdown, y_slowdown);
  }

  // -------------------------------------------------------- (d) vs k
  {
    std::printf("\n=== Figure 9(d): backward algorithms vs k ===\n");
    TablePrinter table("Yeast 2-way join: time vs k",
                       {"k", "B-BJ", "B-IDJ-X", "B-IDJ-Y"});
    for (std::size_t k : {10u, 20u, 50u, 75u, 100u}) {
      BBjJoin bbj;
      BIdjJoin bx(BIdjJoin::Options{UpperBoundKind::kX});
      BIdjJoin by(BIdjJoin::Options{UpperBoundKind::kY});
      table.AddRow(
          {std::to_string(k),
           TablePrinter::Secs(
               RunJoin(bbj, ds.graph, def.dht, def.d, P, Q, k, 5)),
           TablePrinter::Secs(
               RunJoin(bx, ds.graph, def.dht, def.d, P, Q, k, 5)),
           TablePrinter::Secs(
               RunJoin(by, ds.graph, def.dht, def.d, P, Q, k, 5))});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Paper shape for (c): the tighter Y bound wins at every lambda.
  std::printf("shape check [B-IDJ-Y <= B-IDJ-X at every lambda]: %s\n",
              y_beats_x ? "PASS" : "FAIL");
  return y_beats_x ? 0 : 1;
}
