/// \file bench/bench_reorder.cc
/// \brief Cache-conscious layout acceptance gates (graph/reorder.h).
///
/// Two claims are gated, both with byte-identity checks, on the
/// archipelago fixture (many mutually unreachable islands under a
/// seeded ARBITRARY node labelling — what loading a real edge list
/// gives you):
///
///  1. RESTRICTED SWEEP — a saturated-but-local d-step walk must be
///     >= 1.5x faster with the reachability-restricted dense sweep
///     than with the full all-rows sweep, bit-identically: rows
///     outside the walk's weak components contribute exactly zero and
///     are skipped.
///
///  2. DENSE GATHER x REORDER — the same restricted dense gather must
///     be a further >= 1.25x faster on the RCM-reordered layout than
///     on the input labelling, bit-identically. This is the structural
///     composition of the PR's two halves: under an arbitrary
///     labelling the walk's component is SCATTERED across the whole
///     CSR (every covered row is its own cache/TLB excursion); RCM
///     assigns each component a contiguous id range, so the restricted
///     gather streams a compact slab of rows and mass again.
///
/// The DBLP-like d=8 backward eval on the dense path is gated too (in
/// the full configuration): the SCALAR dense fallback — the engine the
/// adaptive policy actually falls back to — must be >= 1.25x faster
/// under the better of the degree/RCM layouts. Its 8-byte mass slots
/// mean eight nodes share a cache line, so degree-packing the hub rows
/// that heavy-tailed gather traffic hits (and RCM-packing
/// neighbourhoods) converts scattered reads into near-cache hits. The
/// 8-lane batch gather is reported but NOT speedup-gated: its mass
/// rows are already exactly one cache line wide (kLaneWidth * 8 bytes
/// — the lanes are the locality device) and the remaining traffic is
/// the lean 16-byte arc stream this PR also introduced, so layout
/// moves it far less by construction. (The generator emits authors
/// hubs-first — an accidentally near-optimal order real inputs don't
/// have — so the DBLP timings use the same arbitrary-relabelling
/// baseline, with the generator-native order reported for context.)
///
/// Usage: bench_reorder [authors] [--smoke]
/// No arguments = the committed acceptance configuration (60k authors,
/// 512-island archipelago; the dev-box snapshot lives at
/// bench/baselines/BENCH_reorder.json). `--smoke` (CI, laptops)
/// shrinks the archipelago and keeps every byte-identity check FATAL
/// but demotes the speedup gates to warnings — cache hierarchies vary
/// across runners, so CI instead gates the ratios recorded in the
/// committed baseline. Exits nonzero when an enforced gate fails.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/propagate.h"
#include "graph/graph_builder.h"
#include "graph/reorder.h"
#include "util/rng.h"

using namespace dhtjoin;         // NOLINT
using namespace dhtjoin::bench;  // NOLINT

namespace {

constexpr double kDenseGatherGate = 1.25;
constexpr double kRestrictedSweepGate = 1.5;
constexpr double kSoaGatherGate = 1.03;

/// Many mutually unreachable random islands; a walk saturates its own
/// island while the full dense sweep still streams every row.
Graph Archipelago(int islands, NodeId island_nodes, int64_t island_edges,
                  uint64_t seed) {
  GraphBuilder b(islands * island_nodes, /*undirected=*/true);
  Rng rng(seed);
  for (int c = 0; c < islands; ++c) {
    const NodeId base = c * island_nodes;
    int64_t added = 0;
    int64_t guard = 0;
    while (added < island_edges && guard < 100 * island_edges) {
      ++guard;
      auto u = base + static_cast<NodeId>(
                          rng.Below(static_cast<uint64_t>(island_nodes)));
      auto v = base + static_cast<NodeId>(
                          rng.Below(static_cast<uint64_t>(island_nodes)));
      if (u == v) continue;
      if (b.AddEdge(u, v, 1.0 + static_cast<double>(rng.Below(4))).ok()) {
        ++added;
      }
    }
  }
  return Unwrap(b.Build(), "Archipelago");
}

struct GatherTiming {
  double ms_per_run = 0.0;
  std::vector<double> rows;
};

/// Times the adaptive engine's dense fallback — the scalar
/// BackwardWalker forced to kDense — over a d-step backward eval of
/// every target, reading the requested sources (the gated path).
/// `soa` selects the gather's edge stream (split arrays vs AoS).
GatherTiming TimeScalarDenseGather(const Graph& g, const DhtParams& p, int d,
                                   const std::vector<ExtNodeId>& targets,
                                   const std::vector<ExtNodeId>& sources,
                                   int repeats, bool soa = true) {
  GatherTiming t;
  BackwardWalker walker(g, PropagationMode::kDense, true, soa);
  auto run = [&] {
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      walker.Reset(p, targets[ti]);
      walker.Advance(d);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        t.rows[ti * sources.size() + s] = walker.Score(sources[s]);
      }
    }
  };
  t.rows.assign(targets.size() * sources.size(), 0.0);
  run();  // warm-up + result capture
  t.ms_per_run = TimeIt(repeats, run) * 1e3;
  return t;
}

/// Times the 8-lane batch gather (reported, not gated; see file
/// comment). `soa` streams the split (to[], prob[]) arrays instead of
/// the 16-byte AoS OutEdge stream — bit-identical by construction.
GatherTiming TimeBatchDenseGather(const Graph& g, const DhtParams& p, int d,
                                  const std::vector<ExtNodeId>& targets,
                                  const std::vector<ExtNodeId>& sources,
                                  int repeats, bool soa = true) {
  GatherTiming t;
  BackwardWalkerBatch batch(
      g, {.mode = PropagationMode::kDense, .soa_gather = soa});
  t.rows = batch.Run(p, d, targets, sources);  // warm-up + result capture
  t.ms_per_run =
      TimeIt(repeats, [&] { batch.Run(p, d, targets, sources); }) * 1e3;
  return t;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Rebuilds `g` under a seeded random node labelling, as a plain
/// insertion-ordered Graph — the honest "input" baseline (real edge
/// lists carry arbitrary ids, not the generator's construction order).
Graph RelabelArbitrarily(const Graph& g, uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<NodeId> relabel(n);
  for (std::size_t i = 0; i < n; ++i) relabel[i] = static_cast<NodeId>(i);
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(relabel[i - 1], relabel[rng.Below(i)]);
  }
  GraphBuilder b(g.num_nodes(), /*undirected=*/false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = g.OutEdges(IntNodeId(u));
    auto weights = g.OutWeights(IntNodeId(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      CheckOk(b.AddEdge(relabel[static_cast<std::size_t>(u)],
                        relabel[static_cast<std::size_t>(row[i].to)],
                        weights[i]),
              "relabel");
    }
  }
  return Unwrap(b.Build(), "relabelled build");
}

}  // namespace

int main(int argc, char** argv) {
  NodeId authors = 60000;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      authors = static_cast<NodeId>(std::atoi(argv[i]));
    }
  }
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = 8;

  // ---------------------------------------------- 1. dense gather
  auto ds = MakeDblp(authors);
  const Graph& native = ds.graph;

  Graph base = RelabelArbitrarily(native, 2024);

  Graph deg = Unwrap(ReorderGraph(base, ReorderKind::kDegree), "degree");
  Graph rcm = Unwrap(ReorderGraph(base, ReorderKind::kRcm), "rcm");
  std::printf("[setup] n=%d m=%lld, layouts: arbitrary (input), degree, "
              "rcm, generator-native\n",
              base.num_nodes(), static_cast<long long>(base.num_edges()));

  std::vector<ExtNodeId> scalar_targets, batch_targets, sources;
  for (std::size_t i = 0; i < 4; ++i) {
    scalar_targets.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 131 + 17) % static_cast<std::size_t>(base.num_nodes()))));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    batch_targets.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 131 + 17) % static_cast<std::size_t>(base.num_nodes()))));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    sources.push_back(ExtNodeId(static_cast<NodeId>(
        (i * 37 + 5) % static_cast<std::size_t>(base.num_nodes()))));
  }

  const int repeats = 5;
  GatherTiming unordered =
      TimeScalarDenseGather(base, p, d, scalar_targets, sources, repeats);
  GatherTiming degree =
      TimeScalarDenseGather(deg, p, d, scalar_targets, sources, repeats);
  GatherTiming rcmt =
      TimeScalarDenseGather(rcm, p, d, scalar_targets, sources, repeats);
  // Context row: the generator's own hubs-first order (different node
  // labels, so only timed, not compared).
  GatherTiming nativet =
      TimeScalarDenseGather(native, p, d, scalar_targets, sources, repeats);

  const bool gather_identical = BitIdentical(unordered.rows, degree.rows) &&
                                BitIdentical(unordered.rows, rcmt.rows);
  const double degree_speedup =
      unordered.ms_per_run / std::max(degree.ms_per_run, 1e-9);
  const double rcm_speedup =
      unordered.ms_per_run / std::max(rcmt.ms_per_run, 1e-9);
  const double best_speedup = std::max(degree_speedup, rcm_speedup);
  std::printf(
      "\ndense d=%d backward gather, scalar fallback (%zu targets x %zu "
      "sources):\n"
      "  input %8.2f ms   degree %8.2f ms (%.2fx)   rcm %8.2f ms "
      "(%.2fx)   byte-identical=%s\n"
      "  (generator-native hubs-first order, for context: %8.2f ms)\n",
      d, scalar_targets.size(), sources.size(), unordered.ms_per_run,
      degree.ms_per_run, degree_speedup, rcmt.ms_per_run, rcm_speedup,
      gather_identical ? "yes" : "NO", nativet.ms_per_run);

  // 8-lane batch gather: reported for the trajectory, gated only on
  // byte-identity (its mass rows are already one line wide, so layout
  // moves it far less — see the file comment).
  GatherTiming bunordered =
      TimeBatchDenseGather(base, p, d, batch_targets, sources, 1);
  GatherTiming bdegree =
      TimeBatchDenseGather(deg, p, d, batch_targets, sources, 1);
  GatherTiming brcm =
      TimeBatchDenseGather(rcm, p, d, batch_targets, sources, 1);
  const bool batch_identical = BitIdentical(bunordered.rows, bdegree.rows) &&
                               BitIdentical(bunordered.rows, brcm.rows);
  const double batch_degree_speedup =
      bunordered.ms_per_run / std::max(bdegree.ms_per_run, 1e-9);
  const double batch_rcm_speedup =
      bunordered.ms_per_run / std::max(brcm.ms_per_run, 1e-9);
  std::printf(
      "dense d=%d backward gather, 8-lane batch (%zu targets x %zu "
      "sources, not gated):\n"
      "  input %8.2f ms   degree %8.2f ms (%.2fx)   rcm %8.2f ms "
      "(%.2fx)   byte-identical=%s\n",
      d, batch_targets.size(), sources.size(), bunordered.ms_per_run,
      bdegree.ms_per_run, batch_degree_speedup, brcm.ms_per_run,
      batch_rcm_speedup, batch_identical ? "yes" : "NO");

  // SoA gather stream (graph.h OutTargets/OutProbs): the dense gather
  // reads only (to, prob), so the split arrays cut the hot stream from
  // 16 padded bytes/edge to 12. The SCALAR gather (one madd/edge,
  // stream-bound) is the gated beneficiary and defaults to SoA; the
  // 8-lane batch (eight madds/edge amortize the stream) measurably
  // prefers AoS, which is its default — both A/B'd here, byte-identity
  // fatal, the committed scalar ratio CI-gated.
  GatherTiming saos =
      TimeScalarDenseGather(base, p, d, scalar_targets, sources, repeats,
                            /*soa=*/false);
  const bool soa_identical = BitIdentical(saos.rows, unordered.rows);
  const double soa_speedup =
      saos.ms_per_run / std::max(unordered.ms_per_run, 1e-9);
  GatherTiming baos =
      TimeBatchDenseGather(base, p, d, batch_targets, sources, 1,
                           /*soa=*/false);
  GatherTiming bsoa =
      TimeBatchDenseGather(base, p, d, batch_targets, sources, 1,
                           /*soa=*/true);
  const bool batch_soa_identical = BitIdentical(baos.rows, bsoa.rows);
  const double batch_soa_speedup =
      baos.ms_per_run / std::max(bsoa.ms_per_run, 1e-9);
  std::printf(
      "dense d=%d backward gather, AoS vs SoA edge stream (input "
      "layout):\n"
      "  scalar: aos %8.2f ms   soa %8.2f ms (%.2fx, gated)   "
      "byte-identical=%s\n"
      "  batch:  aos %8.2f ms   soa %8.2f ms (%.2fx, reported)   "
      "byte-identical=%s\n",
      d, saos.ms_per_run, unordered.ms_per_run, soa_speedup,
      soa_identical ? "yes" : "NO", baos.ms_per_run, bsoa.ms_per_run,
      batch_soa_speedup, batch_soa_identical ? "yes" : "NO");

  // ------------------------- 2. restricted sweep + reordered layout
  // 512 islands of 2k nodes under an arbitrary labelling; the walk
  // lives on one island (~0.2% of the graph) but saturates it, so the
  // unrestricted engine keeps paying the full O(n + m) dense sweep,
  // and the restricted engine's island rows are scattered across the
  // whole CSR until RCM re-packs every component contiguously.
  const int kIslands = smoke ? 64 : 512;
  Graph arch_native = Archipelago(kIslands, /*island_nodes=*/2000,
                                  /*island_edges=*/8000, /*seed=*/23);
  Graph arch = RelabelArbitrarily(arch_native, 4096);
  Graph arch_rcm = Unwrap(ReorderGraph(arch, ReorderKind::kRcm), "arch rcm");
  std::printf("\n[setup] archipelago n=%d m=%lld (%d islands, arbitrary "
              "labels)\n",
              arch.num_nodes(), static_cast<long long>(arch.num_edges()),
              kIslands);
  arch.Reachability();      // build the lazy indexes outside the
  arch_rcm.Reachability();  // timed region

  const NodeId seed_node = 123;
  const int sweep_d = 16;
  auto run_sweep = [&](const Graph& g, bool restrict_dense,
                       std::vector<double>* mass_out) {
    Propagator engine(g, Propagator::Direction::kBackward,
                      PropagationMode::kDense, restrict_dense);
    engine.Reset(g.ToInternal(ExtNodeId(seed_node)));
    for (int i = 0; i < sweep_d; ++i) engine.Step();
    if (mass_out != nullptr) {
      mass_out->assign(static_cast<std::size_t>(g.num_nodes()), 0.0);
      engine.ForEachMass([&](NodeId u, double m) {
        (*mass_out)[static_cast<std::size_t>(
            g.ToExternal(IntNodeId(u)).value())] = m;
      });
    }
  };
  std::vector<double> mass_full, mass_restricted, mass_rcm;
  run_sweep(arch, false, &mass_full);
  run_sweep(arch, true, &mass_restricted);
  run_sweep(arch_rcm, true, &mass_rcm);
  const bool sweep_identical = BitIdentical(mass_full, mass_restricted) &&
                               BitIdentical(mass_full, mass_rcm);
  const double full_ms =
      TimeIt(5, [&] { run_sweep(arch, false, nullptr); }) * 1e3;
  const double restricted_ms =
      TimeIt(5, [&] { run_sweep(arch, true, nullptr); }) * 1e3;
  const double rcm_restricted_ms =
      TimeIt(5, [&] { run_sweep(arch_rcm, true, nullptr); }) * 1e3;
  const double sweep_speedup = full_ms / std::max(restricted_ms, 1e-9);
  const double reorder_gather_speedup =
      restricted_ms / std::max(rcm_restricted_ms, 1e-9);
  std::printf(
      "saturated-but-local walk (d=%d, island of 2k nodes):\n"
      "  full sweep %10.3f ms\n"
      "  restricted %10.3f ms (%.2fx over full)\n"
      "  restricted on RCM layout %7.3f ms (%.2fx over scattered input "
      "layout)\n"
      "  byte-identical=%s\n",
      sweep_d, full_ms, restricted_ms, sweep_speedup, rcm_restricted_ms,
      reorder_gather_speedup, sweep_identical ? "yes" : "NO");

  // ---------------------------------------------------------- gates
  JsonObject doc;
  doc.Set("bench", std::string("reorder"))
      .Set("dataset", std::string("dblp_like"))
      .Set("num_nodes", static_cast<int64_t>(base.num_nodes()))
      .Set("num_edges", base.num_edges())
      .Set("d", d)
      .Set("dblp_scalar_gather_input_ms", unordered.ms_per_run)
      .Set("dblp_scalar_gather_degree_ms", degree.ms_per_run)
      .Set("dblp_scalar_gather_rcm_ms", rcmt.ms_per_run)
      .Set("dblp_scalar_gather_native_ms", nativet.ms_per_run)
      .Set("dblp_scalar_gather_degree_speedup", degree_speedup)
      .Set("dblp_scalar_gather_rcm_speedup", rcm_speedup)
      .Set("dblp_scalar_gather_best_speedup", best_speedup)
      .Set("dblp_scalar_gather_byte_identical", gather_identical ? 1 : 0)
      .Set("dblp_batch_gather_input_ms", bunordered.ms_per_run)
      .Set("dblp_batch_gather_degree_ms", bdegree.ms_per_run)
      .Set("dblp_batch_gather_rcm_ms", brcm.ms_per_run)
      .Set("dblp_batch_gather_degree_speedup", batch_degree_speedup)
      .Set("dblp_batch_gather_rcm_speedup", batch_rcm_speedup)
      .Set("dblp_batch_gather_byte_identical", batch_identical ? 1 : 0)
      .Set("dblp_scalar_gather_aos_ms", saos.ms_per_run)
      .Set("soa_scalar_gather_speedup", soa_speedup)
      .Set("soa_scalar_gather_byte_identical", soa_identical ? 1 : 0)
      .Set("dblp_batch_gather_aos_ms", baos.ms_per_run)
      .Set("dblp_batch_gather_soa_ms", bsoa.ms_per_run)
      .Set("soa_batch_gather_speedup", batch_soa_speedup)
      .Set("soa_batch_gather_byte_identical", batch_soa_identical ? 1 : 0)
      .Set("gate_soa_scalar_gather", kSoaGatherGate)
      .Set("archipelago_islands", kIslands)
      .Set("restricted_sweep_full_ms", full_ms)
      .Set("restricted_sweep_restricted_ms", restricted_ms)
      .Set("restricted_sweep_rcm_ms", rcm_restricted_ms)
      .Set("restricted_sweep_speedup", sweep_speedup)
      .Set("dense_gather_reorder_speedup", reorder_gather_speedup)
      .Set("restricted_sweep_byte_identical", sweep_identical ? 1 : 0)
      .Set("gate_dense_gather_reorder", kDenseGatherGate)
      .Set("gate_restricted_sweep", kRestrictedSweepGate);
  WriteJsonFile("BENCH_reorder.json", doc.ToString());
  std::printf("\nwrote BENCH_reorder.json (restricted-sweep %.2fx, "
              "reorder-on-gather %.2fx)\n",
              sweep_speedup, reorder_gather_speedup);

  bool ok = true;
  if (!gather_identical || !sweep_identical || !batch_identical ||
      !soa_identical || !batch_soa_identical) {
    std::fprintf(stderr, "FAIL: reordered/restricted/SoA results are not "
                         "byte-identical\n");
    ok = false;  // fatal in every mode
  }
  if (soa_speedup < kSoaGatherGate) {
    std::fprintf(stderr,
                 "%s: scalar SoA-gather speedup %.2fx below the %.2fx gate\n",
                 smoke ? "WARN (smoke)" : "FAIL", soa_speedup,
                 kSoaGatherGate);
    ok = ok && smoke;
  }
  if (best_speedup < kDenseGatherGate) {
    std::fprintf(
        stderr,
        "%s: DBLP scalar dense-gather reorder speedup %.2fx below the "
        "%.2fx gate\n",
        smoke ? "WARN (smoke)" : "FAIL", best_speedup, kDenseGatherGate);
    ok = ok && smoke;
  }
  if (reorder_gather_speedup < kDenseGatherGate) {
    std::fprintf(
        stderr,
        "%s: reorder-on-restricted-gather speedup %.2fx below the %.2fx "
        "gate\n",
        smoke ? "WARN (smoke)" : "FAIL", reorder_gather_speedup,
        kDenseGatherGate);
    ok = ok && smoke;
  }
  if (sweep_speedup < kRestrictedSweepGate) {
    std::fprintf(stderr,
                 "%s: restricted-sweep speedup %.2fx below the %.2fx gate\n",
                 smoke ? "WARN (smoke)" : "FAIL", sweep_speedup,
                 kRestrictedSweepGate);
    ok = ok && smoke;
  }
  return ok ? 0 : 1;
}
